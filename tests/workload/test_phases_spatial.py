"""Tests for the temporal phase and spatial imbalance models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.phases import PROFILE_KINDS, TemporalProfile, make_profile
from repro.workload.spatial import SpatialModel, make_spatial_model


class TestTemporalProfile:
    def test_mean_is_exactly_one(self, rng):
        for kind in PROFILE_KINDS:
            profile = TemporalProfile(kind=kind, wander_sigma=0.03, amp=0.3, duty=0.2)
            series = profile.generate(240, rng)
            assert series.mean() == pytest.approx(1.0)
            assert len(series) == 240

    def test_flat_has_low_variance(self, rng):
        series = TemporalProfile(kind="flat", wander_sigma=0.02).generate(500, rng)
        assert series.std() < 0.08

    def test_dip_plateau_stays_near_mean(self, rng):
        """The Fig 7b constraint: dips must not push the plateau >10% above."""
        profile = TemporalProfile(kind="dip", wander_sigma=0.0, amp=0.5, duty=0.15)
        series = profile.generate(600, rng)
        assert series.max() < 1.10

    def test_dip_raises_sigma(self, rng):
        flat = TemporalProfile(kind="flat", wander_sigma=0.02).generate(600, rng)
        dip = TemporalProfile(kind="dip", wander_sigma=0.02, amp=0.5, duty=0.15).generate(600, rng)
        assert dip.std() > flat.std()

    def test_burst_overshoots(self, rng):
        profile = TemporalProfile(kind="burst", wander_sigma=0.0, amp=0.3, duty=0.2)
        series = profile.generate(600, rng)
        assert series.max() / series.mean() > 1.15

    def test_short_jobs_fall_back_to_flat(self, rng):
        profile = TemporalProfile(kind="dip", amp=0.5, duty=0.2)
        series = profile.generate(2, rng)
        assert len(series) == 2

    def test_invalid_kind(self):
        with pytest.raises(WorkloadError):
            TemporalProfile(kind="sawtooth")

    def test_invalid_length(self, rng):
        with pytest.raises(WorkloadError):
            TemporalProfile(kind="flat").generate(0, rng)

    def test_validation_bounds(self):
        with pytest.raises(WorkloadError):
            TemporalProfile(kind="flat", wander_sigma=0.9)
        with pytest.raises(WorkloadError):
            TemporalProfile(kind="dip", amp=0.95)
        with pytest.raises(WorkloadError):
            TemporalProfile(kind="dip", duty=1.0)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_make_profile_valid_for_any_burstiness(self, burstiness):
        rng = np.random.default_rng(0)
        profile = make_profile(burstiness, rng)
        assert profile.kind in PROFILE_KINDS

    def test_population_mostly_not_bursty(self, rng):
        """The paper's core temporal finding must be baked into the mix."""
        kinds = [make_profile(0.3, rng).kind for _ in range(2000)]
        burst_share = kinds.count("burst") / len(kinds)
        assert burst_share < 0.20


class TestSpatialModel:
    def test_offsets_centered(self, rng):
        offsets = SpatialModel(static_sigma=0.05).node_offsets(20000, rng)
        assert abs(offsets.mean() - 1.0) < 0.01

    def test_zero_sigma_offsets(self, rng):
        np.testing.assert_array_equal(
            SpatialModel(static_sigma=0.0).node_offsets(5, rng), np.ones(5)
        )

    def test_dynamic_noise_shape(self, rng):
        noise = SpatialModel(static_sigma=0.05).dynamic_noise(4, 100, rng)
        assert noise.shape == (4, 100)
        assert np.all(noise > 0)

    def test_events_create_dips(self, rng):
        quiet = SpatialModel(static_sigma=0.0, dynamic_sigma=0.0, event_prob=0.0)
        noisy = SpatialModel(static_sigma=0.0, dynamic_sigma=0.0, event_prob=0.3, event_amp=0.5)
        q = quiet.dynamic_noise(4, 500, rng)
        n = noisy.dynamic_noise(4, 500, rng)
        np.testing.assert_array_equal(q, 1.0)
        assert n.min() < 0.95  # events push node power down

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            SpatialModel(static_sigma=0.9)
        with pytest.raises(WorkloadError):
            SpatialModel(static_sigma=0.05, event_prob=0.9)

    def test_make_spatial_model_scales_with_imbalance(self, rng):
        low = [make_spatial_model(0.0, rng).static_sigma for _ in range(200)]
        high = [make_spatial_model(1.0, rng).static_sigma for _ in range(200)]
        assert np.mean(high) > np.mean(low)

    def test_make_spatial_model_bad_imbalance(self, rng):
        with pytest.raises(WorkloadError):
            make_spatial_model(1.5, rng)
