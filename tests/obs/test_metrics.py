"""MetricsRegistry: counters, gauges, histograms, exposition, threads."""

from __future__ import annotations

import math
import re
import threading

import pytest

from repro.errors import ObsError
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})? "
    r"(?P<value>[^ ]+)$"
)


def parse_exposition(text: str) -> dict[str, float]:
    """Prometheus 0.0.4 text → {'name{labels}': value}; strict on format."""
    samples: dict[str, float] = {}
    helped: set[str] = set()
    typed: set[str] = set()
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            assert parts[3] in {"counter", "gauge", "histogram", "untyped"}
            typed.add(parts[2])
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"malformed sample line: {line!r}"
        value = float("inf") if match["value"] == "+Inf" else float(match["value"])
        samples[match["name"] + (match["labels"] or "")] = value
    # Every sample family traces back to a HELP/TYPE pair.
    for key in samples:
        base = key.split("{")[0]
        family = re.sub(r"_(bucket|sum|count)$", "", base)
        assert base in typed or family in typed, f"sample {key} lacks TYPE"
        assert base in helped or family in helped, f"sample {key} lacks HELP"
    return samples


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("t_requests_total", "requests")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        assert c.total() == 3.5

    def test_rejects_decrease(self):
        c = Counter("t_mono_total", "monotone")
        with pytest.raises(ObsError, match="cannot decrease"):
            c.inc(-1)

    def test_labeled_series_are_independent(self):
        c = Counter("t_by_outcome_total", "by outcome", labelnames=("outcome",))
        c.inc(outcome="ok")
        c.inc(outcome="ok")
        c.inc(outcome="failed")
        assert c.value(outcome="ok") == 2.0
        assert c.value(outcome="failed") == 1.0
        assert c.total() == 3.0

    def test_wrong_labels_raise(self):
        c = Counter("t_labeled_total", "labeled", labelnames=("stage",))
        with pytest.raises(ObsError, match="takes labels"):
            c.inc()
        with pytest.raises(ObsError, match="takes labels"):
            c.inc(stage="workload", extra="nope")

    def test_invalid_names_rejected(self):
        with pytest.raises(ObsError, match="invalid metric name"):
            Counter("0bad", "bad")
        with pytest.raises(ObsError, match="invalid label name"):
            Counter("t_ok_total", "ok", labelnames=("bad-label",))


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("t_depth", "queue depth")
        g.set(5)
        g.inc(2)
        g.dec(4)
        assert g.value() == 3.0

    def test_can_go_negative(self):
        g = Gauge("t_signed", "signed")
        g.dec(1.5)
        assert g.value() == -1.5


class TestHistogram:
    def test_count_sum_mean_exact(self):
        h = Histogram("t_lat", "latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(55.55)
        assert h.mean() == pytest.approx(55.55 / 4)

    def test_buckets_cumulative_in_exposition(self):
        h = Histogram("t_cum", "cumulative", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        lines = h.render()
        assert 't_cum_bucket{le="1"} 1' in lines
        assert 't_cum_bucket{le="2"} 2' in lines
        assert 't_cum_bucket{le="+Inf"} 3' in lines
        assert "t_cum_count 3" in lines

    def test_quantile_interpolates_inside_bucket(self):
        h = Histogram("t_q", "quantiles", buckets=(0.0, 10.0))
        for _ in range(100):
            h.observe(5.0)  # all rank mass inside the (0, 10] bucket
        # Linear interpolation: rank q*100 of 100 observations in one
        # bucket spanning (0, 10] → q * 10.
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(0.99) == pytest.approx(9.9)

    def test_quantile_empty_and_overflow(self):
        h = Histogram("t_q2", "quantiles", buckets=(1.0, 2.0))
        assert h.quantile(0.5) == 0.0
        h.observe(100.0)  # lands in +Inf: clamp to last finite edge
        assert h.quantile(0.99) == 2.0
        with pytest.raises(ObsError, match="quantile"):
            h.quantile(1.5)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ObsError, match="strictly increasing"):
            Histogram("t_bad", "bad", buckets=(2.0, 1.0))
        with pytest.raises(ObsError, match="strictly increasing"):
            Histogram("t_bad2", "bad", buckets=())

    def test_trailing_inf_edge_dropped(self):
        h = Histogram("t_inf", "inf edge", buckets=(1.0, math.inf))
        assert h.buckets == (1.0,)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("r_total", "hits", labelnames=("k",))
        b = reg.counter("r_total", "hits", labelnames=("k",))
        assert a is b

    def test_kind_and_label_conflicts_raise(self):
        reg = MetricsRegistry()
        reg.counter("r_total", "hits")
        with pytest.raises(ObsError, match="already registered"):
            reg.gauge("r_total", "hits")
        with pytest.raises(ObsError, match="already registered"):
            reg.counter("r_total", "hits", labelnames=("k",))
        reg.histogram("r_h", "h", buckets=(1.0, 2.0))
        with pytest.raises(ObsError, match="different buckets"):
            reg.histogram("r_h", "h", buckets=(1.0, 3.0))

    def test_render_is_valid_exposition(self):
        reg = MetricsRegistry()
        reg.counter("r_requests_total", "requests", labelnames=("outcome",)).inc(
            outcome="ok"
        )
        reg.gauge("r_depth", "depth").set(4)
        h = reg.histogram("r_latency_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        samples = parse_exposition(reg.render())
        assert samples['r_requests_total{outcome="ok"}'] == 1.0
        assert samples["r_depth"] == 4.0
        assert samples['r_latency_seconds_bucket{le="0.1"}'] == 1.0
        assert samples['r_latency_seconds_bucket{le="+Inf"}'] == 2.0
        assert samples["r_latency_seconds_count"] == 2.0

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("r_esc_total", "esc", labelnames=("v",)).inc(v='a"b\\c\nd')
        text = reg.render()
        assert '{v="a\\"b\\\\c\\nd"}' in text

    def test_snapshot_delta_isolates_a_window(self):
        reg = MetricsRegistry()
        c = reg.counter("r_win_total", "windowed", labelnames=("k",))
        c.inc(5, k="x")  # pre-existing traffic
        before = reg.snapshot()
        c.inc(2, k="x")
        c.inc(1, k="y")
        delta = MetricsRegistry.delta(before, reg.snapshot())
        assert delta["r_win_total"][("x",)] == 2.0
        assert delta["r_win_total"][("y",)] == 1.0

    def test_snapshot_reports_histograms_as_counts(self):
        reg = MetricsRegistry()
        h = reg.histogram("r_hist_seconds", "hist", buckets=(1.0,))
        h.observe(0.5)
        h.observe(2.0)
        assert reg.snapshot()["r_hist_seconds_count"][()] == 2.0

    def test_describe_lists_the_catalog(self):
        reg = MetricsRegistry()
        reg.counter("r_b_total", "b")
        reg.gauge("r_a", "a")
        names = [d["name"] for d in reg.describe()]
        assert names == sorted(names)
        kinds = {d["name"]: d["kind"] for d in reg.describe()}
        assert kinds == {"r_a": "gauge", "r_b_total": "counter"}


class TestThreadSafety:
    def test_concurrent_updates_lose_nothing(self):
        reg = MetricsRegistry()
        counter = reg.counter("r_mt_total", "mt", labelnames=("worker",))
        hist = reg.histogram("r_mt_seconds", "mt", buckets=(0.5,))
        n_threads, n_iter = 8, 2_000

        def worker(idx: int) -> None:
            label = str(idx % 2)
            for _ in range(n_iter):
                counter.inc(worker=label)
                hist.observe(0.25)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert counter.total() == n_threads * n_iter
        assert counter.value(worker="0") == n_threads * n_iter / 2
        assert hist.count() == n_threads * n_iter
        assert hist.sum() == pytest.approx(0.25 * n_threads * n_iter)

    def test_concurrent_registration_yields_one_object(self):
        reg = MetricsRegistry()
        seen: list[object] = []
        barrier = threading.Barrier(8)

        def register() -> None:
            barrier.wait()
            seen.append(reg.counter("r_race_total", "race"))

        threads = [threading.Thread(target=register) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(obj) for obj in seen}) == 1
