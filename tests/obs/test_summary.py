"""Trace summarization: span forest, aggregates, critical path, CLI."""

from __future__ import annotations

import json

from repro.obs import summarize_trace, trace_span, tracing_to


def _span(span_id, name, duration, parent=None, start=0.0, attrs=None):
    return {
        "span_id": span_id,
        "name": name,
        "duration_s": duration,
        "parent_id": parent,
        "start_unix": start,
        "trace_id": "t0",
        "run_id": "r0",
        "attrs": attrs or {},
    }


def _write(tmp_path, spans):
    path = tmp_path / "trace.jsonl"
    path.write_text("".join(json.dumps(s) + "\n" for s in spans))
    return path


def test_forest_rebuilt_with_orphans_as_roots(tmp_path):
    path = _write(tmp_path, [
        _span("a", "root", 10.0, start=1.0),
        _span("b", "child", 4.0, parent="a", start=2.0),
        _span("c", "orphan", 2.0, parent="missing", start=3.0),
    ])
    summary = summarize_trace(path)
    assert summary.n_spans == 3
    assert sorted(r.name for r in summary.roots) == ["orphan", "root"]
    root = next(r for r in summary.roots if r.name == "root")
    assert [c.name for c in root.children] == ["child"]
    assert root.self_s == 6.0
    assert summary.total_s == 12.0


def test_aggregates_group_by_name(tmp_path):
    path = _write(tmp_path, [
        _span("a", "stage", 3.0, start=1.0),
        _span("b", "stage", 1.0, start=2.0),
        _span("c", "other", 5.0, start=3.0),
    ])
    rows = {r["name"]: r for r in summarize_trace(path).aggregates()}
    assert rows["stage"]["count"] == 2
    assert rows["stage"]["total_s"] == 4.0
    assert rows["stage"]["mean_s"] == 2.0
    assert rows["stage"]["max_s"] == 3.0
    # Sorted by total, descending: "other" (5.0) first.
    assert [r["name"] for r in summarize_trace(path).aggregates()][0] == "other"


def test_critical_path_follows_slowest_children(tmp_path):
    path = _write(tmp_path, [
        _span("a", "root", 10.0, start=1.0),
        _span("b", "fast", 2.0, parent="a", start=2.0),
        _span("c", "slow", 7.0, parent="a", start=3.0),
        _span("d", "leaf", 6.0, parent="c", start=4.0),
    ])
    assert [n.name for n in summarize_trace(path).critical_path()] == [
        "root", "slow", "leaf",
    ]


def test_render_caps_depth_and_children(tmp_path):
    spans = [_span("root", "root", 100.0, start=0.0)]
    spans += [
        _span(f"c{i}", f"child{i}", 1.0, parent="root", start=float(i + 1))
        for i in range(20)
    ]
    summary = summarize_trace(_write(tmp_path, spans))
    text = summary.render(max_depth=6, max_children=12)
    assert "… 8 more child span(s)" in text
    shallow = summary.render(max_depth=1, max_children=12)
    assert "… 20 child span(s)" in shallow


def test_live_trace_round_trips_through_summary(tmp_path):
    trace = tmp_path / "live.jsonl"
    with tracing_to(trace):
        with trace_span("run", preset="tiny"):
            with trace_span("stage", stage="workload"):
                pass
            with trace_span("stage", stage="schedule"):
                pass
    summary = summarize_trace(trace)
    assert summary.n_spans == 3
    assert [r.name for r in summary.roots] == ["run"]
    assert len(summary.roots[0].children) == 2
    text = summary.render()
    assert "stage=workload" in text
    assert "critical path" in text


def test_cli_obs_summary(tmp_path, capsys):
    from repro.cli import main

    trace = tmp_path / "trace.jsonl"
    with tracing_to(trace):
        with trace_span("top"):
            pass
    assert main(["obs", "summary", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "1 span(s)" in out
    assert "top" in out


def test_cli_obs_summary_missing_file(tmp_path, capsys):
    from repro.cli import main

    assert main(["obs", "summary", str(tmp_path / "nope.jsonl")]) == 2
    assert "no trace file" in capsys.readouterr().err
