"""Span tracing: nesting, parent ids, error capture, JSONL round-trip."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ObsError
from repro.obs import (
    active_writer,
    read_spans,
    trace_span,
    tracing_to,
)


def test_disarmed_tracing_yields_none_and_writes_nothing(tmp_path):
    assert active_writer() is None
    with trace_span("noop", key="value") as span:
        assert span is None
    assert list(tmp_path.iterdir()) == []


def test_nested_spans_record_parent_and_shared_trace_id(tmp_path):
    trace = tmp_path / "trace.jsonl"
    with tracing_to(trace):
        with trace_span("outer", label="a") as outer:
            with trace_span("inner", stage="s") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
            with trace_span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id

    spans = {s["name"]: s for s in read_spans(trace)}
    assert set(spans) == {"outer", "inner", "sibling"}
    assert spans["outer"]["parent_id"] is None
    assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
    assert spans["sibling"]["parent_id"] == spans["outer"]["span_id"]
    assert len({s["trace_id"] for s in spans.values()}) == 1
    assert len({s["run_id"] for s in spans.values()}) == 1


def test_children_close_before_parents(tmp_path):
    trace = tmp_path / "trace.jsonl"
    with tracing_to(trace):
        with trace_span("parent"):
            with trace_span("child"):
                pass
    # JSONL order is close order: the child's record lands first.
    names = [json.loads(line)["name"] for line in trace.read_text().splitlines()]
    assert names == ["child", "parent"]


def test_span_set_attaches_attrs(tmp_path):
    trace = tmp_path / "trace.jsonl"
    with tracing_to(trace):
        with trace_span("work", preset="x") as span:
            span.set(n_jobs=42)
    (record,) = read_spans(trace)
    assert record["attrs"] == {"preset": "x", "n_jobs": 42}
    assert record["duration_s"] >= 0.0


def test_exception_flags_span_and_propagates(tmp_path):
    trace = tmp_path / "trace.jsonl"
    with tracing_to(trace):
        with pytest.raises(ValueError, match="boom"):
            with trace_span("failing"):
                raise ValueError("boom")
    (record,) = read_spans(trace)
    assert record["attrs"]["error"] == "ValueError: boom"


def test_sibling_spans_after_close_share_no_parent(tmp_path):
    trace = tmp_path / "trace.jsonl"
    with tracing_to(trace):
        with trace_span("first"):
            pass
        with trace_span("second"):
            pass
    spans = {s["name"]: s for s in read_spans(trace)}
    assert spans["first"]["parent_id"] is None
    assert spans["second"]["parent_id"] is None
    assert spans["first"]["trace_id"] != spans["second"]["trace_id"]


def test_worker_threads_start_new_roots(tmp_path):
    trace = tmp_path / "trace.jsonl"
    with tracing_to(trace):
        with trace_span("main-root"):
            # A span opened in a fresh thread must not inherit main's parent.
            def in_thread() -> None:
                with trace_span("thread-root"):
                    pass

            worker = threading.Thread(target=in_thread)
            worker.start()
            worker.join()
    spans = {s["name"]: s for s in read_spans(trace)}
    assert spans["thread-root"]["parent_id"] is None
    assert spans["thread-root"]["trace_id"] != spans["main-root"]["trace_id"]


def test_tracing_to_restores_previous_writer(tmp_path):
    outer_trace = tmp_path / "outer.jsonl"
    inner_trace = tmp_path / "inner.jsonl"
    with tracing_to(outer_trace) as outer_writer:
        with tracing_to(inner_trace):
            with trace_span("inner-span"):
                pass
        assert active_writer() is outer_writer
        with trace_span("outer-span"):
            pass
    assert active_writer() is None
    assert [s["name"] for s in read_spans(inner_trace)] == ["inner-span"]
    assert [s["name"] for s in read_spans(outer_trace)] == ["outer-span"]


def test_read_spans_rejects_garbage(tmp_path):
    missing = tmp_path / "nope.jsonl"
    with pytest.raises(ObsError, match="no trace file"):
        read_spans(missing)

    bad_json = tmp_path / "bad.jsonl"
    bad_json.write_text("not json\n")
    with pytest.raises(ObsError, match="invalid span JSON"):
        read_spans(bad_json)

    not_span = tmp_path / "notspan.jsonl"
    not_span.write_text('{"foo": 1}\n')
    with pytest.raises(ObsError, match="not a span record"):
        read_spans(not_span)


def test_read_spans_sorts_by_start_and_skips_blanks(tmp_path):
    trace = tmp_path / "trace.jsonl"
    trace.write_text(
        '{"span_id": "b", "name": "late", "start_unix": 2.0}\n'
        "\n"
        '{"span_id": "a", "name": "early", "start_unix": 1.0}\n'
    )
    assert [s["name"] for s in read_spans(trace)] == ["early", "late"]
