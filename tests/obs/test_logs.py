"""Structured JSON logging: record shape, thresholds, shared run id."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.errors import ObsError
from repro.obs import configure_logging, get_logger, new_request_id, run_id


@pytest.fixture
def sink():
    """Capture log output in a StringIO; restore defaults afterwards."""
    stream = io.StringIO()
    configure_logging(stream=stream, level="debug")
    yield stream
    configure_logging(stream=None, level=None)


def _records(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


def test_records_are_json_with_run_id_and_fields(sink):
    get_logger("repro.test").info("model trained", model="BDT", seconds=1.5)
    (record,) = _records(sink)
    assert record["level"] == "info"
    assert record["logger"] == "repro.test"
    assert record["msg"] == "model trained"
    assert record["model"] == "BDT"
    assert record["seconds"] == 1.5
    assert record["run_id"] == run_id()
    assert record["ts"] > 0


def test_threshold_gates_lower_levels(sink):
    configure_logging(stream=sink, level="warning")
    logger = get_logger("repro.test")
    logger.debug("hidden")
    logger.info("hidden too")
    logger.warning("visible")
    logger.error("also visible")
    assert [r["level"] for r in _records(sink)] == ["warning", "error"]


def test_unknown_levels_raise(sink):
    with pytest.raises(ObsError, match="unknown log level"):
        get_logger("repro.test").log("loud", "nope")
    with pytest.raises(ObsError, match="unknown log level"):
        configure_logging(level="loud")


def test_run_id_is_stable_and_request_ids_are_not():
    assert run_id() == run_id()
    assert new_request_id() != new_request_id()


def test_non_serializable_fields_fall_back_to_str(sink):
    get_logger("repro.test").info("weird", payload={1, 2}.__class__)
    (record,) = _records(sink)
    assert "class" in record["payload"]


def test_interleaved_threads_never_shear_lines(sink):
    logger = get_logger("repro.test")

    def worker(idx: int) -> None:
        for i in range(200):
            logger.info("tick", worker=idx, i=i)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    records = _records(sink)  # every line parses as one JSON object
    assert len(records) == 4 * 200


def test_closed_sink_never_raises():
    stream = io.StringIO()
    configure_logging(stream=stream, level="debug")
    try:
        stream.close()
        get_logger("repro.test").error("into the void")  # must not raise
    finally:
        configure_logging(stream=None, level=None)
