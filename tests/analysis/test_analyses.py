"""Tests for every analysis module against the shared small datasets."""

import numpy as np
import pytest

from repro import analysis
from repro.analysis.report import comparison_text, format_table
from repro.errors import AnalysisError
from repro.frames import Table


class TestSystemLevel:
    def test_utilization_bounded(self, emmy_small):
        util = analysis.system_utilization(emmy_small)
        assert 0.0 <= util.minimum <= util.mean <= util.peak <= 1.0
        assert util.kind == "system"

    def test_power_below_system_utilization_scaled(self, emmy_small):
        """Power utilization < system utilization: the stranded-power gap."""
        util = analysis.system_utilization(emmy_small)
        power = analysis.power_utilization(emmy_small)
        assert power.mean < util.mean
        assert power.stranded_fraction > 0.2  # paper: >30% stranded

    def test_power_without_idle_lower(self, emmy_small):
        with_idle = analysis.power_utilization(emmy_small, include_idle=True)
        without = analysis.power_utilization(emmy_small, include_idle=False)
        assert without.mean <= with_idle.mean

    def test_daily_means_shape(self, emmy_small):
        util = analysis.system_utilization(emmy_small)
        days = util.daily_means()
        assert len(days) == emmy_small.horizon_s // 86400
        assert np.all((days >= 0) & (days <= 1))


class TestJobLevel:
    def test_distribution_stats(self, emmy_small):
        dist = analysis.per_node_power_distribution(emmy_small)
        assert 0.4 < dist.mean_tdp_fraction < 0.9
        assert dist.pdf.integral() == pytest.approx(1.0)
        assert dist.n_jobs == emmy_small.num_jobs

    def test_jobs_below_tdp(self, emmy_small):
        """RQ3: jobs draw less than the node TDP."""
        dist = analysis.per_node_power_distribution(emmy_small)
        assert dist.mean_watts < emmy_small.spec.node_tdp_watts

    def test_app_comparison(self, emmy_small, meggie_small):
        comp = analysis.app_power_comparison(
            {"emmy": emmy_small, "meggie": meggie_small}
        )
        assert comp.mean_watts.shape == (5, 2)
        # RQ4: every key app draws less on Meggie.
        assert np.all(comp.mean_watts[:, 0] > comp.mean_watts[:, 1])
        table = comp.as_table()
        assert "emmy_watts" in table

    def test_rankings(self, emmy_small, meggie_small):
        comp = analysis.app_power_comparison(
            {"emmy": emmy_small, "meggie": meggie_small}
        )
        ranking = comp.ranking("emmy")
        assert sorted(ranking) == sorted(comp.apps)
        assert 0 < comp.max_relative_drop() < 1

    def test_correlations(self, emmy_small):
        corr = analysis.feature_power_correlations(emmy_small)
        assert set(corr) == {"job_length", "job_size"}
        for r in corr.values():
            assert -1 <= r.statistic <= 1
            assert r.pvalue < 0.05  # strongly significant on real sizes

    def test_split_analysis(self, emmy_small):
        for dim in ("length", "size"):
            split = analysis.split_analysis(emmy_small, dim)
            # Fig 5: longer/larger jobs draw more per-node power.
            assert split.high.mean_tdp_fraction > split.low.mean_tdp_fraction
            assert split.low.n_jobs + split.high.n_jobs == emmy_small.num_jobs

    def test_split_bad_dimension(self, emmy_small):
        with pytest.raises(AnalysisError):
            analysis.split_analysis(emmy_small, "width")


class TestTemporalSpatial:
    def test_temporal_summary(self, emmy_small):
        t = analysis.temporal_summary(emmy_small)
        assert t.n_jobs == len(emmy_small.traces)
        assert 0 < t.mean_temporal_cov < 0.4  # "limited temporal variance"
        assert 0 < t.mean_peak_overshoot < 0.5
        assert 0 <= t.mean_frac_time_above_10pct <= 1
        assert 0 <= t.frac_jobs_never_above <= 1
        assert t.overshoot_at_percentile(0.8) >= t.overshoot_at_percentile(0.2)

    def test_spatial_summary(self, emmy_small):
        s = analysis.spatial_summary(emmy_small)
        assert s.mean_spread_watts > 0
        assert 0 < s.mean_spread_fraction < 1
        assert 0 <= s.frac_jobs_energy_imbalance_over_15pct <= 1
        assert s.energy_imbalance_pdf.integral() == pytest.approx(1.0)

    def test_requires_traces(self, emmy_small):
        import dataclasses

        bare = dataclasses.replace(emmy_small, traces={})
        with pytest.raises(AnalysisError, match="instrumented"):
            analysis.temporal_summary(bare)
        with pytest.raises(AnalysisError):
            analysis.spatial_summary(bare)


class TestUserLevel:
    def test_concentration(self, emmy_small):
        c = analysis.concentration_analysis(emmy_small)
        assert 0.5 < c.node_hours_share <= 1.0  # heavy concentration
        assert 0.5 < c.energy_share <= 1.0
        assert 0 <= c.top_set_overlap <= 1.0
        frac, share = c.node_hours_curve
        assert share[-1] == pytest.approx(1.0)

    def test_user_variability(self, emmy_small):
        v = analysis.user_power_variability(emmy_small)
        assert v.mean_cov > 0.05  # users are NOT monotonous (RQ7)
        assert v.n_users > 2

    def test_cluster_variability_collapses(self, emmy_small):
        """RQ8: clustering by (user, nodes) slashes the variability."""
        user_cov = analysis.user_power_variability(emmy_small).mean_cov
        cluster = analysis.cluster_variability(emmy_small, "nodes")
        assert cluster.mean_cov < user_cov
        assert cluster.frac_below_10pct > 0.4
        assert cluster.bucket_fractions.sum() == pytest.approx(1.0)

    def test_cluster_by_walltime(self, emmy_small):
        cluster = analysis.cluster_variability(emmy_small, "walltime")
        assert cluster.cluster_by == "walltime"
        assert cluster.frac_below_10pct > 0.4

    def test_cluster_bad_key(self, emmy_small):
        with pytest.raises(AnalysisError):
            analysis.cluster_variability(emmy_small, "app")

    def test_user_totals_sums(self, emmy_small):
        totals = analysis.user_totals(emmy_small)
        assert totals["node_hours"].sum() == pytest.approx(
            emmy_small.jobs["node_hours"].sum()
        )


class TestPrediction:
    def test_run_prediction(self, emmy_small):
        results = analysis.run_prediction(emmy_small, n_repeats=2, seed=0)
        assert set(results) == {"BDT", "KNN", "FLDA"}
        for r in results.values():
            assert 0 <= r.summary.frac_below_10pct <= 1
        # BDT beats FLDA by a wide margin (Fig 14's ordering).
        assert (
            results["BDT"].summary.frac_below_10pct
            > results["FLDA"].summary.frac_below_10pct
        )

    def test_rejects_tiny_dataset(self, emmy_small):
        import dataclasses

        tiny = dataclasses.replace(emmy_small, jobs=emmy_small.jobs.head(10))
        with pytest.raises(AnalysisError):
            analysis.run_prediction(tiny)


class TestReport:
    def test_format_table(self):
        t = Table({"aa": [1, 2], "b": ["x", "y"]})
        text = format_table(t)
        assert "aa" in text and "x" in text and "--" in text

    def test_format_empty(self):
        assert format_table(Table({})) == "(empty table)"

    def test_truncation(self):
        t = Table({"a": list(range(100))})
        text = format_table(t, max_rows=5)
        assert "more rows" in text

    def test_comparison_text(self):
        text = comparison_text("Fig X", [("metric", 0.5, 0.48)], note="close")
        assert "Fig X" in text and "0.48" in text and "close" in text
