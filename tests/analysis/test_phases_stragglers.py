"""Tests for phase detection and spatial diagnostics."""

import numpy as np
import pytest

from repro.analysis import (
    analyze_phases,
    detect_phases,
    estimate_node_factors,
    straggler_nodes,
)
from repro.errors import AnalysisError
from repro.telemetry.trace import JobPowerTrace


class TestDetectPhases:
    def test_flat_series_is_one_phase(self, rng):
        series = 100.0 + rng.normal(0, 1.0, 300)
        result = detect_phases(series)
        assert result.is_flat
        assert result.phases[0].duration == 300

    def test_single_step_detected(self, rng):
        series = np.concatenate([np.full(100, 100.0), np.full(100, 140.0)])
        series += rng.normal(0, 1.0, 200)
        result = detect_phases(series)
        assert result.num_phases == 2
        cut = result.phases[0].end
        assert 95 <= cut <= 105
        assert result.phases[0].mean_watts < result.phases[1].mean_watts

    def test_three_phases(self, rng):
        series = np.concatenate(
            [np.full(80, 100.0), np.full(80, 150.0), np.full(80, 90.0)]
        ) + rng.normal(0, 1.5, 240)
        result = detect_phases(series)
        assert result.num_phases == 3

    def test_high_power_fraction(self, rng):
        series = np.concatenate([np.full(150, 100.0), np.full(50, 160.0)])
        series += rng.normal(0, 1.0, 200)
        result = detect_phases(series)
        assert result.high_power_fraction(0.10) == pytest.approx(0.25, abs=0.05)

    def test_phase_power_range(self, rng):
        series = np.concatenate([np.full(100, 100.0), np.full(100, 150.0)])
        result = detect_phases(series + rng.normal(0, 1.0, 200))
        assert result.phase_power_range() == pytest.approx(50.0 / 125.0, rel=0.1)

    def test_min_length_respected(self, rng):
        series = np.full(100, 100.0) + rng.normal(0, 1.0, 100)
        series[50] = 200.0  # single-sample spike: too short to be a phase
        result = detect_phases(series, min_length=5)
        assert all(p.duration >= 5 for p in result.phases)

    def test_slow_wander_not_shredded(self, rng):
        """An AR(1)-like slow wander is not a phase structure."""
        from scipy.signal import lfilter

        innovations = rng.normal(0, 1.0, 600)
        wander = lfilter([1.0], [1.0, -0.95], innovations)
        series = 150.0 + 2.0 * wander / wander.std()  # ±~1.3% of mean
        result = detect_phases(series)
        assert result.num_phases <= 3

    def test_min_jump_filters_small_steps(self, rng):
        series = np.concatenate([np.full(100, 100.0), np.full(100, 102.0)])
        series += rng.normal(0, 0.1, 200)
        # A 2% step is below the default 4% jump threshold.
        assert detect_phases(series).is_flat
        # But an explicit lower threshold reveals it.
        assert detect_phases(series, min_jump=0.01).num_phases == 2

    def test_max_phases_cap(self, rng):
        # A staircase with many levels cannot exceed the cap.
        series = np.repeat(np.arange(20, dtype=float) * 50 + 100, 30)
        result = detect_phases(series + rng.normal(0, 0.5, len(series)), max_phases=4)
        assert result.num_phases <= 4

    def test_validation(self):
        with pytest.raises(AnalysisError):
            detect_phases([])
        with pytest.raises(AnalysisError):
            detect_phases([1.0], min_length=0)

    def test_analyze_phases_on_trace(self, emmy_small):
        trace = next(iter(emmy_small.traces.values()))
        result = analyze_phases(trace)
        assert result.num_phases >= 1
        total = sum(p.duration for p in result.phases)
        assert total == trace.num_minutes


class TestStragglerNodes:
    def make_trace(self, node_levels, minutes=60) -> JobPowerTrace:
        matrix = np.tile(np.asarray(node_levels, float)[:, None], (1, minutes))
        return JobPowerTrace(job_id=1, user_id="u", app="a", system="emmy",
                             matrix=matrix)

    def test_balanced_job_has_no_outliers(self):
        report = straggler_nodes(self.make_trace([100.0, 101.0, 99.0, 100.0]))
        assert report.num_outliers == 0

    def test_straggler_flagged(self):
        report = straggler_nodes(self.make_trace([100.0, 100.0, 100.0, 60.0]))
        assert report.num_outliers == 1
        assert bool(report.outlier_mask[3])
        assert report.worst_deviation == pytest.approx(0.40)

    def test_hot_node_flagged(self):
        report = straggler_nodes(self.make_trace([100.0, 100.0, 130.0]))
        assert bool(report.outlier_mask[2])

    def test_threshold_validation(self, emmy_small):
        trace = next(iter(emmy_small.traces.values()))
        with pytest.raises(AnalysisError):
            straggler_nodes(trace, threshold=0.0)


class TestNodeFactorEstimation:
    def test_recovers_ground_truth(self):
        """The fleet estimate must correlate with the cluster's true
        manufacturing factors — the validation the simulation enables."""
        from repro.cluster import Cluster
        from repro.stats.correlation import pearson
        from repro.telemetry import generate_dataset

        ds = generate_dataset(
            "emmy", seed=9, num_nodes=24, num_users=12,
            horizon_s=12 * 86400, max_traces=400,
        )
        estimate = estimate_node_factors(ds, min_observations=3)
        cluster = Cluster.from_name("emmy", seed=9, num_nodes=24)
        truth = cluster.power_factors[estimate.node_ids]
        r = pearson(truth, estimate.factors)
        assert r.statistic > 0.5
        assert r.pvalue < 0.01

    def test_requires_traces(self, emmy_small):
        import dataclasses

        bare = dataclasses.replace(emmy_small, traces={}, trace_allocations={})
        with pytest.raises(AnalysisError):
            estimate_node_factors(bare)

    def test_min_observations_gate(self, emmy_small):
        with pytest.raises(AnalysisError):
            estimate_node_factors(emmy_small, min_observations=10_000)

    def test_factor_lookup(self, emmy_small):
        estimate = estimate_node_factors(emmy_small, min_observations=1)
        nid = int(estimate.node_ids[0])
        assert estimate.factor_of(nid) == pytest.approx(estimate.factors[0])
        with pytest.raises(AnalysisError):
            estimate.factor_of(10_000)
