"""Tests for the markdown characterization report."""

import pytest

from repro.analysis import full_report
from repro.errors import AnalysisError


class TestFullReport:
    @pytest.fixture(scope="class")
    def report_text(self, emmy_small):
        return full_report(emmy_small, n_repeats=2)

    def test_has_all_sections(self, report_text):
        for heading in (
            "# Power characterization — emmy",
            "## System level",
            "## Job level",
            "## Dynamic behavior",
            "## Users",
            "## Pre-execution power prediction",
        ):
            assert heading in report_text

    def test_mentions_models(self, report_text):
        assert "BDT" in report_text and "FLDA" in report_text

    def test_numbers_are_formatted(self, report_text):
        assert "%" in report_text and " W" in report_text

    def test_markdown_tables_well_formed(self, report_text):
        for line in report_text.splitlines():
            if line.startswith("|"):
                assert line.rstrip().endswith("|")

    def test_without_prediction(self, emmy_small):
        text = full_report(emmy_small, include_prediction=False)
        assert "Pre-execution" not in text
        assert "## Users" in text

    def test_without_traces(self, emmy_small):
        import dataclasses

        bare = dataclasses.replace(emmy_small, traces={}, trace_allocations={})
        text = full_report(bare, include_prediction=False)
        assert "Dynamic behavior" not in text

    def test_empty_dataset_rejected(self, emmy_small):
        import dataclasses

        empty = dataclasses.replace(emmy_small, jobs=emmy_small.jobs.head(0))
        with pytest.raises(AnalysisError):
            full_report(empty)
