"""Property tests for the seeded fault schedule (Hypothesis).

The determinism contract behind the whole chaos/incident stack is that
``decide(rule, seed, n)`` is a *pure* function of ``(seed, point, n)``
and the rule's window — no RNG objects, no process state. These
properties pin that contract across randomly generated rules and plans
instead of a few hand-picked examples: same inputs ⇒ same schedule,
JSON round-trips are lossless, windows and forced calls behave as
documented, and the soak plan covers every injection point.
"""

from __future__ import annotations

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.errors import FaultError  # noqa: E402
from repro.faults.plan import (  # noqa: E402
    INJECTION_POINTS,
    FaultPlan,
    FaultRule,
    decide,
    soak_plan,
)

POINTS = sorted(INJECTION_POINTS)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
call_counts = st.integers(min_value=0, max_value=64)


@st.composite
def rules(draw, point=None):
    """A valid FaultRule with a random window and forced calls."""
    start = draw(st.integers(min_value=0, max_value=16))
    stop = draw(st.one_of(
        st.none(), st.integers(min_value=start + 1, max_value=48)
    ))
    return FaultRule(
        point=point if point is not None else draw(st.sampled_from(POINTS)),
        rate=draw(st.floats(min_value=0.0, max_value=1.0,
                            allow_nan=False, allow_infinity=False)),
        start=start,
        stop=stop,
        force_calls=tuple(draw(st.lists(
            st.integers(min_value=0, max_value=48), max_size=4
        ))),
        duration_s=draw(st.sampled_from((0.0, 0.001, 0.5))),
    )


@st.composite
def plans(draw):
    """A valid FaultPlan: one rule per (distinct) point."""
    chosen = draw(st.lists(st.sampled_from(POINTS), unique=True, max_size=4))
    return FaultPlan(
        seed=draw(seeds),
        rules=tuple(draw(rules(point=p)) for p in chosen),
    )


# -- decide: purity and window semantics ---------------------------------


@given(rule=rules(), seed=seeds, n=st.integers(min_value=0, max_value=256))
def test_decide_is_a_pure_function_of_seed_point_n(rule, seed, n):
    first = decide(rule, seed, n)
    # Same inputs, fresh call: bit-identical outcome, no hidden state.
    assert decide(rule, seed, n) is first
    # An equal rule built from the JSON round-trip decides identically.
    clone = FaultRule.from_dict(json.loads(json.dumps(rule.to_dict())))
    assert decide(clone, seed, n) is first


@given(rule=rules(), seed=seeds, n=st.integers(min_value=0, max_value=256))
def test_decide_never_fires_outside_the_window(rule, seed, n):
    inside = rule.start <= n and (rule.stop is None or n < rule.stop)
    if not inside:
        assert decide(rule, seed, n) is False
    elif n in rule.force_calls:
        assert decide(rule, seed, n) is True


@given(point=st.sampled_from(POINTS), seed=seeds, n=call_counts)
def test_rate_extremes_are_laws_not_samples(point, seed, n):
    never = FaultRule(point, rate=0.0)
    always = FaultRule(point, rate=1.0)
    assert decide(never, seed, n) is False
    # rate=1.0 fires on every in-window call (the draw lives in [0, 1)).
    assert decide(always, seed, n) is True


# -- schedules: prefix stability and replay ------------------------------


@given(plan=plans(), n=call_counts, m=call_counts)
def test_schedule_prefixes_agree(plan, n, m):
    """Extending a run never rewrites history: schedules are prefixes."""
    lo, hi = sorted((n, m))
    for point in plan.points:
        long = plan.schedule(point, hi)
        assert plan.schedule(point, lo) == tuple(i for i in long if i < lo)
        assert all(0 <= i < hi for i in long)


@given(plan=plans(), n=call_counts)
def test_schedule_replays_after_json_round_trip(plan, n):
    clone = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
    assert clone == plan
    for point in plan.points:
        assert clone.schedule(point, n) == plan.schedule(point, n)


@settings(max_examples=25)
@given(plan=plans())
def test_save_load_round_trip(plan, tmp_path_factory):
    path = tmp_path_factory.mktemp("plans") / "plan.json"
    plan.save(path)
    assert FaultPlan.load(path) == plan


@given(plan=plans())
def test_points_and_rule_for_agree(plan):
    for point in POINTS:
        rule = plan.rule_for(point)
        assert (rule is not None) == (point in plan.points)
        if rule is not None:
            assert rule.point == point
    for absent in set(POINTS) - set(plan.points):
        assert plan.schedule(absent, 32) == ()


# -- soak plan: coverage guarantee ---------------------------------------


@given(seed=seeds,
       rate=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_soak_plan_covers_every_point_at_least_once(seed, rate):
    plan = soak_plan(seed=seed, rate=rate)
    assert set(plan.points) == set(INJECTION_POINTS)
    for point in plan.points:
        # The forced early fire makes coverage a guarantee, not a rate
        # question: two calls suffice for every point, at any rate.
        assert 1 in plan.schedule(point, 2)
    latency = plan.rule_for("batcher.latency")
    assert latency is not None and latency.duration_s > 0


# -- validation: invalid inputs fail loudly ------------------------------


@given(start=st.integers(min_value=1, max_value=32))
def test_inverted_windows_are_rejected(start):
    with pytest.raises(FaultError, match="stop must be > start"):
        FaultRule("cache.read", start=start, stop=start)


def test_duplicate_points_and_bad_rates_are_rejected():
    with pytest.raises(FaultError, match="duplicate rule"):
        FaultPlan(rules=(FaultRule("cache.read"), FaultRule("cache.read")))
    with pytest.raises(FaultError, match="rate must be in"):
        FaultRule("cache.read", rate=1.5)
    with pytest.raises(FaultError, match="unknown injection point"):
        FaultRule("cache.explode")
