"""Chaos-suite fixtures: the serve tests' tiny scenario plus plan helpers.

Every test here must leave the process disarmed — the injector is a
module global, and a leaked armed plan would poison unrelated tests. The
autouse guard below turns any leak into a loud failure at the site that
caused it.
"""

from __future__ import annotations

import pytest

from repro.faults.injector import active_injector
from repro.spec import ScenarioSpec

TINY = ScenarioSpec(
    "emmy", seed=3, num_nodes=24, num_users=10, horizon_days=2, max_traces=10
)


@pytest.fixture(scope="session")
def tiny_spec() -> ScenarioSpec:
    return TINY


@pytest.fixture(scope="session")
def faults_cache(tmp_path_factory):
    """Artifact-cache root shared across chaos tests (dataset built once)."""
    return tmp_path_factory.mktemp("faults-cache")


@pytest.fixture(scope="session")
def tiny_records(tiny_spec, faults_cache) -> list[dict]:
    """Prediction-request records drawn from the tiny scenario's own jobs."""
    from repro.pipeline import build_dataset

    dataset = build_dataset(**tiny_spec.dataset_kwargs(), cache_dir=faults_cache)
    jobs = dataset.jobs
    return [
        {
            "user": str(jobs["user"][i]),
            "nodes": int(jobs["nodes"][i]),
            "req_walltime_s": int(jobs["req_walltime_s"][i]),
        }
        for i in range(min(32, len(jobs)))
    ]


@pytest.fixture(autouse=True)
def no_leaked_injector():
    """Fail the test (not its neighbors) if it leaves a plan armed."""
    assert active_injector() is None, "a previous test leaked an armed injector"
    yield
    assert active_injector() is None, "test left a fault injector armed"
