"""Cache fault points and the registry's recovery semantics.

Each test arms one fault, asserts the registry absorbs it (retry,
retrain, or in-memory fallback — never an error out of ``get``), and
checks the answers stay bit-identical once the fault clears.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import CacheError
from repro.faults import FaultPlan, FaultRule, arm
from repro.pipeline.cache import PAYLOAD_NAME, ArtifactCache
from repro.serve import ModelRegistry
from repro.serve.registry import MODEL_STAGE


def _registry(cache_dir, **kwargs) -> ModelRegistry:
    kwargs.setdefault("retry_backoff_s", 0.001)
    return ModelRegistry(cache_dir=cache_dir, **kwargs)


def _plan(point: str, **kwargs) -> FaultPlan:
    return FaultPlan(seed=0, rules=(FaultRule(point, **kwargs),))


def test_cache_read_fault_falls_back_to_retraining(faults_cache, tiny_spec,
                                                   tiny_records):
    trained = _registry(faults_cache).get(tiny_spec, "BDT")
    registry = _registry(faults_cache)
    with arm(_plan("cache.read", rate=1.0)):
        servable = registry.get(tiny_spec, "BDT")
    stats = registry.stats()
    assert stats["trained"] == 1 and stats["disk_loads"] == 0
    assert stats["load_failures"] == registry.load_retries + 1
    # Retraining used the (cached, byte-identical) dataset, so the
    # recovered model answers exactly like the original artifact.
    np.testing.assert_array_equal(
        servable.predict_records(tiny_records),
        trained.predict_records(tiny_records),
    )


def test_transient_read_fault_recovers_within_the_retries(faults_cache,
                                                          tiny_spec):
    _registry(faults_cache).get(tiny_spec, "BDT")
    registry = _registry(faults_cache, load_retries=2)
    # Fires on the first load attempt only; the first retry succeeds.
    with arm(_plan("cache.read", rate=1.0, stop=1)):
        registry.get(tiny_spec, "BDT")
    stats = registry.stats()
    assert stats["disk_loads"] == 1 and stats["trained"] == 0
    assert stats["load_failures"] == 1


def test_injected_corrupt_pickle_forces_retrain(faults_cache, tiny_spec):
    _registry(faults_cache).get(tiny_spec, "BDT")
    registry = _registry(faults_cache)
    with arm(_plan("cache.corrupt", rate=1.0)):
        registry.get(tiny_spec, "BDT")
    stats = registry.stats()
    assert stats["trained"] == 1 and stats["disk_loads"] == 0
    assert stats["load_failures"] == registry.load_retries + 1


def test_actually_corrupted_artifact_forces_retrain(tmp_path, tiny_spec):
    registry = _registry(tmp_path)
    registry.get(tiny_spec, "BDT")
    disk_key = registry.model_key(tiny_spec, "BDT")
    payload = registry.cache.entry_dir(MODEL_STAGE, disk_key) / PAYLOAD_NAME
    payload.write_bytes(b"\x80\x04 truncated garbage")
    with pytest.raises(pickle.UnpicklingError):
        registry.cache.load_pickle(MODEL_STAGE, disk_key)
    fresh = _registry(tmp_path)
    servable = fresh.get(tiny_spec, "BDT")  # must not raise
    assert servable.known_users
    assert fresh.stats()["trained"] == 1


def test_cache_write_fault_serves_from_memory(tmp_path, tiny_spec):
    registry = _registry(tmp_path)
    with arm(_plan("cache.write", rate=1.0)) as injector:
        servable = registry.get(tiny_spec, "BDT")
        assert injector.fires("cache.write") > 0
    assert servable.known_users
    stats = registry.stats()
    assert stats["store_failures"] == 1
    assert stats["dataset_fallbacks"] == 1  # pipeline commits failed too
    # Nothing was committed: a later cold registry simply retrains.
    assert registry.cache.entries(MODEL_STAGE) == []
    assert _registry(tmp_path).get(tiny_spec, "BDT").known_users


def test_dataset_fallback_is_byte_identical(tmp_path, faults_cache, tiny_spec,
                                            tiny_records):
    """A registry whose cache is unusable trains on the same bytes."""
    baseline = _registry(faults_cache).get(tiny_spec, "BDT")
    walled = _registry(tmp_path)
    with arm(_plan("cache.write", rate=1.0)):
        recovered = walled.get(tiny_spec, "BDT")
    np.testing.assert_array_equal(
        recovered.predict_records(tiny_records),
        baseline.predict_records(tiny_records),
    )


def test_injected_read_fault_raises_cache_error_at_the_cache_layer(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store_pickle("workload", "k" * 64, [1, 2, 3], {"n_items": 3})
    with arm(_plan("cache.read", rate=1.0)):
        with pytest.raises(CacheError, match="injected fault: cache.read"):
            cache.load_pickle("workload", "k" * 64)
    assert cache.load_pickle("workload", "k" * 64) == [1, 2, 3]  # cleared
