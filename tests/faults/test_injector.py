"""FaultInjector: arming semantics, counters, and disarmed behavior."""

from __future__ import annotations

import threading

import pytest

from repro.errors import FaultError
from repro.faults import FaultInjector, FaultPlan, FaultRule, arm
from repro.faults.injector import active_injector, maybe_fire


def _plan(**kwargs) -> FaultPlan:
    return FaultPlan(seed=0, rules=(FaultRule("cache.read", **kwargs),))


def test_disarmed_maybe_fire_is_false_and_stateless():
    assert active_injector() is None
    assert maybe_fire("cache.read") is False
    assert maybe_fire("no.such.point") is False  # not even name validation


def test_arming_is_scoped_and_restores_previous():
    outer = FaultInjector(_plan(rate=0.0))
    inner = FaultInjector(_plan(rate=0.0))
    with outer:
        assert active_injector() is outer
        with inner:
            assert active_injector() is inner
        assert active_injector() is outer
    assert active_injector() is None


def test_disarm_order_violation_raises():
    a = FaultInjector(_plan())
    b = FaultInjector(_plan())
    a.__enter__()
    b.__enter__()
    with pytest.raises(FaultError, match="disarm order"):
        a.__exit__(None, None, None)
    b.__exit__(None, None, None)
    a.__exit__(None, None, None)
    assert active_injector() is None


def test_counters_track_calls_and_fires():
    with arm(_plan(rate=1.0, start=2)) as injector:
        results = [maybe_fire("cache.read") for _ in range(5)]
    assert results == [False, False, True, True, True]
    assert injector.calls("cache.read") == 5
    assert injector.fires("cache.read") == 3
    assert injector.counters() == {"cache.read": {"calls": 5, "fires": 3}}
    snap = injector.snapshot()
    assert snap["seed"] == 0 and snap["points"] == ["cache.read"]


def test_unplanned_point_counts_nothing():
    with arm(_plan(rate=1.0)) as injector:
        assert maybe_fire("batcher.crash") is False
    assert injector.calls("batcher.crash") == 0


def test_fire_counts_match_schedule_under_thread_contention():
    """Call indices are atomic: N threads racing on a point still produce
    exactly the plan's scheduled number of fires for N total calls."""
    plan = _plan(rate=0.5)
    calls_per_thread, n_threads = 200, 8
    with arm(plan) as injector:
        barrier = threading.Barrier(n_threads)

        def hammer():
            barrier.wait()
            for _ in range(calls_per_thread):
                maybe_fire("cache.read")

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    total = calls_per_thread * n_threads
    assert injector.calls("cache.read") == total
    assert injector.fires("cache.read") == len(plan.schedule("cache.read", total))


def test_injector_requires_a_plan():
    with pytest.raises(FaultError, match="needs a FaultPlan"):
        FaultInjector({"seed": 0})


def test_latency_rule_sleeps_on_fire():
    import time

    plan = FaultPlan(
        rules=(FaultRule("batcher.latency", rate=1.0, duration_s=0.02),)
    )
    with arm(plan):
        t0 = time.perf_counter()
        assert maybe_fire("batcher.latency") is True
        assert time.perf_counter() - t0 >= 0.02
