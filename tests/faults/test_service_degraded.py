"""Degraded mode: the service answers from the mean baseline, flagged.

When the registry cannot produce the requested model (the injected
``registry.train`` fault stands in for real training trouble), the
service must keep answering — from :class:`MeanPowerServable`, with
``degraded: true`` in the response and ``/healthz`` — while caller
mistakes (unknown model, malformed records) still fail exactly as in
healthy operation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServeError
from repro.faults import FaultPlan, FaultRule, arm
from repro.serve import ModelRegistry, PredictionService
from tests.helpers.served import ServedSystem


def _train_plan(rate: float = 1.0) -> FaultPlan:
    return FaultPlan(seed=0, rules=(FaultRule("registry.train", rate=rate),))


def _service(tiny_spec) -> PredictionService:
    # In-memory registry: no disk artifacts, so every get must train —
    # which is exactly what the armed fault makes impossible.
    registry = ModelRegistry(use_disk=False)
    return PredictionService(tiny_spec, registry=registry, max_wait_s=0.001)


def _http(server, method, path, payload=None, raw_body=None):
    status, _, body = server.request(method, path, payload=payload,
                                     raw_body=raw_body)
    return status, body


def test_training_fault_degrades_to_mean_baseline_then_recovers(
    tiny_spec, tiny_records
):
    with _service(tiny_spec) as service:
        with arm(_train_plan()) as injector:
            detail = service.predict_detailed(tiny_records[:4])
            assert injector.fires("registry.train") >= 1
        assert detail["degraded"] is True
        assert detail["served_by"] == "mean-baseline"
        baseline = service.registry.fallback(tiny_spec)
        np.testing.assert_array_equal(
            detail["predictions"], np.full(4, baseline.mean_power_w)
        )
        health = service.health()
        assert health["status"] == "degraded"
        assert health["degraded"] is True and health["n_degraded"] == 1
        assert service.stats()["degraded"] is True
        # Fault cleared: the next request trains for real and the flag
        # drops, while the lifetime counter keeps the history.
        detail = service.predict_detailed(tiny_records[:4])
        assert detail["degraded"] is False
        assert detail["served_by"] == "BDT"
        health = service.health()
        assert health["status"] == "ok" and health["n_degraded"] == 1


def test_warm_failure_is_reported_not_raised(tiny_spec):
    """`serve` must start (degraded) even when warm-up training fails."""
    with _service(tiny_spec) as service:
        with arm(_train_plan()):
            outcome = service.warm(("BDT",))
            assert "injected fault: registry.train" in outcome["BDT"]
            with pytest.raises(ServeError, match="unknown model"):
                service.warm(("XGBoost",))
        assert service.warm(("BDT",)) == {"BDT": "ok"}


def test_caller_mistakes_still_fail_during_degradation(tiny_spec, tiny_records):
    with _service(tiny_spec) as service:
        with arm(_train_plan()):
            # Unknown model is checked before the registry is consulted.
            with pytest.raises(ServeError, match="unknown model"):
                service.predict(tiny_records[:1], model="XGBoost")
            # Field validation applies to baseline-served requests too.
            with pytest.raises(ServeError, match="lacks fields"):
                service.predict([{"user": "u"}])
            # The mean baseline has no frozen vocabulary: any user is
            # served rather than bounced while the service is degraded.
            detail = service.predict_detailed(
                [{"user": "nobody", "nodes": 2, "req_walltime_s": 600}]
            )
            assert detail["degraded"] is True


def test_http_surface_reports_degradation_and_faults(tiny_spec, tiny_records):
    with _service(tiny_spec) as service, \
            ServedSystem(service=service) as server:
        plan = _train_plan()
        with arm(plan):
            status, body = _http(
                server, "POST", "/predict", {"jobs": tiny_records[:2]}
            )
            assert status == 200
            assert body["degraded"] is True
            assert body["served_by"] == "mean-baseline"
            assert body["n"] == 2

            status, health = _http(server, "GET", "/healthz")
            assert status == 200
            assert health["status"] == "degraded"
            # The armed injector surfaces its schedule state for audits.
            assert health["faults"]["seed"] == plan.seed
            assert health["faults"]["counters"]["registry.train"]["fires"] >= 1

            # Caller mistakes stay 400s while degraded ...
            status, body = _http(
                server, "POST", "/predict",
                {"model": "XGBoost", "jobs": tiny_records[:1]},
            )
            assert status == 400 and "unknown model" in body["error"]
            # ... and a burst of malformed bodies never kills the server.
            for raw in (b"{not json", b"[]", b'{"jobs": "nope"}', b""):
                status, body = _http(server, "POST", "/predict", raw_body=raw)
                assert status == 400, raw
                assert "error" in body

        # Disarmed: trains for real, flag drops, snapshot disappears.
        status, body = _http(
            server, "POST", "/predict", {"jobs": tiny_records[:2]}
        )
        assert status == 200 and body["degraded"] is False
        status, health = _http(server, "GET", "/healthz")
        assert health["status"] == "ok"
        assert "faults" not in health
