"""FaultPlan/FaultRule: determinism, windows, serialization, validation."""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.faults import (
    INJECTION_POINTS,
    FaultPlan,
    FaultRule,
    decide,
    soak_plan,
)


def test_same_seed_same_schedule():
    plan_a = FaultPlan(seed=7, rules=(FaultRule("cache.read", rate=0.3),))
    plan_b = FaultPlan(seed=7, rules=(FaultRule("cache.read", rate=0.3),))
    assert plan_a.schedule("cache.read", 500) == plan_b.schedule("cache.read", 500)
    assert plan_a.schedule("cache.read", 500)  # a 30% rule fires in 500 calls


def test_different_seed_different_schedule():
    rules = (FaultRule("cache.read", rate=0.3),)
    a = FaultPlan(seed=1, rules=rules).schedule("cache.read", 500)
    b = FaultPlan(seed=2, rules=rules).schedule("cache.read", 500)
    assert a != b


def test_decide_is_pure_and_rate_bounded():
    rule = FaultRule("batcher.crash", rate=0.25)
    fires = [decide(rule, 11, n) for n in range(4000)]
    assert fires == [decide(rule, 11, n) for n in range(4000)]
    # The sha-draw is uniform: the empirical rate lands near 25%.
    assert 0.20 < sum(fires) / len(fires) < 0.30


def test_rate_zero_never_fires_rate_one_always_fires():
    never = FaultRule("cache.write", rate=0.0)
    always = FaultRule("cache.write", rate=1.0)
    assert not any(decide(never, 0, n) for n in range(100))
    assert all(decide(always, 0, n) for n in range(100))


def test_window_bounds_fires():
    rule = FaultRule("telemetry.drop", rate=1.0, start=10, stop=20)
    plan = FaultPlan(seed=0, rules=(rule,))
    assert plan.schedule("telemetry.drop", 50) == tuple(range(10, 20))


def test_force_calls_fire_regardless_of_rate():
    rule = FaultRule("registry.train", rate=0.0, force_calls=(3, 7))
    plan = FaultPlan(seed=5, rules=(rule,))
    assert plan.schedule("registry.train", 10) == (3, 7)
    # ... but only inside the window.
    windowed = FaultRule("registry.train", rate=0.0, start=5, force_calls=(3, 7))
    assert FaultPlan(rules=(windowed,)).schedule("registry.train", 10) == (7,)


def test_unscheduled_point_never_fires():
    plan = FaultPlan(seed=0, rules=(FaultRule("cache.read", rate=1.0),))
    assert plan.rule_for("batcher.crash") is None
    assert plan.schedule("batcher.crash", 100) == ()


def test_round_trips_through_json(tmp_path):
    plan = FaultPlan(
        seed=42,
        rules=(
            FaultRule("cache.read", rate=0.5, start=2, stop=9, force_calls=(4,)),
            FaultRule("batcher.latency", rate=1.0, duration_s=0.001),
        ),
    )
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    path = plan.save(tmp_path / "plan.json")
    assert FaultPlan.load(path) == plan


def test_validation_rejects_bad_rules_and_plans(tmp_path):
    with pytest.raises(FaultError, match="unknown injection point"):
        FaultRule("no.such.point", rate=0.1)
    with pytest.raises(FaultError, match="rate"):
        FaultRule("cache.read", rate=1.5)
    with pytest.raises(FaultError, match="stop"):
        FaultRule("cache.read", rate=0.1, start=5, stop=5)
    with pytest.raises(FaultError, match="duration_s"):
        FaultRule("batcher.latency", duration_s=-1.0)
    with pytest.raises(FaultError, match="duplicate"):
        FaultPlan(rules=(FaultRule("cache.read"), FaultRule("cache.read")))
    with pytest.raises(FaultError, match="unknown fault-rule fields"):
        FaultRule.from_dict({"point": "cache.read", "probability": 0.5})
    with pytest.raises(FaultError, match="cannot load"):
        FaultPlan.load(tmp_path / "missing.json")


def test_soak_plan_covers_every_point_with_a_forced_fire():
    plan = soak_plan(seed=9, rate=0.2, latency_s=0.003)
    assert set(plan.points) == set(INJECTION_POINTS)
    for point in INJECTION_POINTS:
        rule = plan.rule_for(point)
        assert rule.force_calls == (1,)
        assert 1 in plan.schedule(point, 2)
        expected = 0.003 if point == "batcher.latency" else 0.0
        assert rule.duration_s == expected
