"""A short in-test soak: the chaos harness itself must hold its invariants.

``make chaos-soak`` runs the long version; this smoke keeps the same
audit (zero lost requests, schedule consistency, bit-identical recovery)
inside the tier-1 suite at a few seconds of wall time.
"""

from __future__ import annotations

from repro.faults import FaultPlan, soak_plan
from repro.faults.chaos import ChaosReport, run_soak


def test_soak_plans_are_reproducible():
    a, b = soak_plan(seed=11, rate=0.2), soak_plan(seed=11, rate=0.2)
    assert a == b
    for point in a.points:
        assert a.schedule(point, 500) == b.schedule(point, 500)
    # A different seed reshuffles at least one point's schedule.
    other = soak_plan(seed=12, rate=0.2)
    assert any(
        a.schedule(p, 500) != other.schedule(p, 500) for p in a.points
    )


def test_soak_plan_round_trips_through_json(tmp_path):
    plan = soak_plan(seed=7)
    path = tmp_path / "plan.json"
    plan.save(path)
    assert FaultPlan.load(path) == plan


def test_short_soak_passes_the_audit(tmp_path):
    report = run_soak(
        seed=5, duration_s=3.0, n_clients=3, rate=0.2, cache_dir=tmp_path
    )
    assert isinstance(report, ChaosReport)
    assert report.passed, report.problems()
    assert report.counts["lost"] == 0
    assert report.stuck_futures == 0
    assert report.total > 0
    assert report.recovered_identical
    assert report.schedule_consistent
    # The serialized report is self-contained for CI artifacts.
    as_dict = report.to_dict()
    assert as_dict["counts"] == report.counts
    assert as_dict["passed"] is True
    assert "lost=0" in report.summary()
