"""Batcher fault points: crash supervision, latency, no lost requests."""

from __future__ import annotations

import numpy as np

from repro.faults import FaultPlan, FaultRule, arm
from repro.serve.batching import MicroBatcher


def _echo_nodes(records):
    return [float(r["nodes"]) for r in records]


def _plan(point: str, **kwargs) -> FaultPlan:
    return FaultPlan(seed=0, rules=(FaultRule(point, **kwargs),))


def test_crash_restarts_worker_without_losing_requests():
    records = [{"nodes": n} for n in range(60)]
    with MicroBatcher(_echo_nodes, max_batch=4, max_wait_s=0.0) as batcher:
        # Half of all batches crash mid-flight; the supervisor must
        # re-queue the in-flight batch and restart the loop every time.
        with arm(_plan("batcher.crash", rate=0.5)) as injector:
            values = batcher.predict_many(records, timeout=30.0)
        assert injector.fires("batcher.crash") > 0
        assert batcher.crashes == injector.fires("batcher.crash")
        assert batcher.alive
    assert values == [float(n) for n in range(60)]


def test_recovered_results_are_bit_identical():
    records = [{"nodes": n} for n in range(40)]
    with MicroBatcher(_echo_nodes, max_batch=8, max_wait_s=0.0) as clean:
        baseline = clean.predict_many(records)
    with MicroBatcher(_echo_nodes, max_batch=8, max_wait_s=0.0) as chaotic:
        with arm(_plan("batcher.crash", rate=0.4)) as injector:
            under_faults = chaotic.predict_many(records)
        after = chaotic.predict_many(records)  # faults cleared
    assert injector.fires("batcher.crash") > 0
    # Per-record predictions are independent, so a re-predicted batch —
    # during chaos or after — answers exactly what the clean run did.
    np.testing.assert_array_equal(under_faults, baseline)
    np.testing.assert_array_equal(after, baseline)


def test_latency_fault_slows_batches_but_corrupts_nothing():
    records = [{"nodes": n} for n in range(10)]
    plan = _plan("batcher.latency", rate=1.0, duration_s=0.005)
    with MicroBatcher(_echo_nodes, max_batch=2, max_wait_s=0.0) as batcher:
        with arm(plan) as injector:
            values = batcher.predict_many(records)
        assert injector.fires("batcher.latency") >= 5  # one per batch
    assert values == [float(n) for n in range(10)]


def test_crash_during_close_still_fails_pending_cleanly():
    plan = _plan("batcher.crash", rate=1.0)
    batcher = MicroBatcher(_echo_nodes, max_batch=4, max_wait_s=0.0)
    with arm(plan):
        futures = [batcher.submit({"nodes": n}) for n in range(8)]
        batcher.close(timeout=2.0)
    # Every future reached a terminal state — served before the close
    # landed, or failed with the shutdown error. None may hang.
    assert all(f.done() for f in futures)
