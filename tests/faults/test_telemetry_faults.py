"""telemetry.drop: gap-filled samples, manifest accounting, bit-identity."""

from __future__ import annotations

import numpy as np

from repro.faults import FaultPlan, FaultRule, arm
from repro.pipeline import build_dataset, run_pipeline
from repro.pipeline.config import ShardConfig
from repro.telemetry import generate_dataset


def _drop_plan(**kwargs) -> FaultPlan:
    return FaultPlan(seed=0, rules=(FaultRule("telemetry.drop", **kwargs),))


def _kwargs(tiny_spec) -> dict:
    return tiny_spec.dataset_kwargs()


def test_dropped_samples_are_gap_filled_deterministically(tiny_spec):
    clean = generate_dataset(**_kwargs(tiny_spec))
    with arm(_drop_plan(rate=0.1)) as injector:
        gappy = generate_dataset(**_kwargs(tiny_spec))
    fired = injector.fires("telemetry.drop")
    assert fired > 0
    power_clean = clean.jobs["pernode_power_w"].astype(float)
    power_gappy = gappy.jobs["pernode_power_w"].astype(float)
    # Every aggregate is finite — the gaps were filled, not propagated —
    # and exactly the dropped jobs differ from the clean run.
    assert np.isfinite(power_gappy).all()
    assert int((power_clean != power_gappy).sum()) == fired
    # Same plan, same schedule: a re-run drops the same jobs and fills
    # them with the same deterministic levels.
    with arm(_drop_plan(rate=0.1)):
        replay = generate_dataset(**_kwargs(tiny_spec))
    np.testing.assert_array_equal(
        power_gappy, replay.jobs["pernode_power_w"].astype(float)
    )


def test_unarmed_runs_are_bit_identical_to_clean_runs(tiny_spec):
    """The injection points themselves must not perturb anything."""
    a = generate_dataset(**_kwargs(tiny_spec))
    with arm(_drop_plan(rate=0.0)):  # armed, but a never-firing rule
        b = generate_dataset(**_kwargs(tiny_spec))
    c = generate_dataset(**_kwargs(tiny_spec))
    for jobs in (b.jobs, c.jobs):
        np.testing.assert_array_equal(
            a.jobs["pernode_power_w"], jobs["pernode_power_w"]
        )
        np.testing.assert_array_equal(a.jobs["energy_j"], jobs["energy_j"])


def test_gap_count_reaches_stage_meta_and_manifest(tmp_path, tiny_spec):
    shard = ShardConfig.from_scenario(tiny_spec)
    with arm(_drop_plan(rate=0.1)) as injector:
        manifest = run_pipeline([shard], cache_dir=tmp_path)
    fired = injector.fires("telemetry.drop")
    assert fired > 0
    assert manifest.n_gaps == fired
    report = manifest.shards[0]
    telemetry = next(t for t in report.stages if t.stage == "telemetry")
    assert telemetry.n_gaps == fired
    assert report.to_dict()["n_gaps"] == fired
    assert manifest.to_dict()["n_gaps"] == fired
    # The gap count is pinned in the cached stage meta too, so a later
    # cache hit still reports how damaged the artifact is.
    clean_manifest = run_pipeline([shard], cache_dir=tmp_path)
    assert clean_manifest.fully_cached
    assert clean_manifest.n_gaps == fired


def test_clean_runs_report_zero_gaps(tmp_path, tiny_spec):
    manifest = run_pipeline(
        [ShardConfig.from_scenario(tiny_spec)], cache_dir=tmp_path
    )
    assert manifest.n_gaps == 0
    assert all(t.n_gaps == 0 for s in manifest.shards for t in s.stages)


def test_gap_filled_dataset_key_unchanged_but_contents_flagged(tmp_path,
                                                               tiny_spec):
    """Digests are config-addressed: arming a plan must not fork keys."""
    kwargs = _kwargs(tiny_spec)
    clean_dir, gappy_dir = tmp_path / "clean", tmp_path / "gappy"
    build_dataset(**kwargs, cache_dir=clean_dir)
    with arm(_drop_plan(rate=0.1)):
        build_dataset(**kwargs, cache_dir=gappy_dir)
    shard = ShardConfig.from_scenario(tiny_spec)
    from repro.pipeline.config import stage_key

    key = stage_key(shard, "dataset")
    from repro.pipeline import ArtifactCache

    assert ArtifactCache(clean_dir).has("dataset", key)
    assert ArtifactCache(gappy_dir).has("dataset", key)
