"""Tests for system specs, nodes, variability, and the cluster container."""

import numpy as np
import pytest

from repro.cluster import (
    EMMY,
    MEGGIE,
    Cluster,
    Node,
    SystemSpec,
    VariabilityModel,
    build_nodes,
    get_spec,
    known_systems,
    linpack_power_draw,
)
from repro.cluster.linpack import LINPACK_TDP_FRACTION
from repro.errors import ClusterError


class TestSpecs:
    def test_table1_emmy(self):
        assert EMMY.num_nodes == 560
        assert EMMY.node_tdp_watts == 210.0
        assert EMMY.microarchitecture == "IvyBridge"
        assert EMMY.batch_system == "torque"
        assert EMMY.process_node_nm == 22

    def test_table1_meggie(self):
        assert MEGGIE.num_nodes == 728
        assert MEGGIE.node_tdp_watts == 195.0
        assert MEGGIE.microarchitecture == "Broadwell"
        assert MEGGIE.batch_system == "slurm"
        assert not MEGGIE.smt_enabled

    def test_total_tdp(self):
        assert EMMY.total_tdp_watts == 560 * 210.0

    def test_cores_per_node(self):
        assert EMMY.cores_per_node == 20

    def test_linpack_node_power_below_tdp(self):
        # Table 1: LINPACK drew 170 kW on Emmy and 210 kW on Meggie.
        assert EMMY.linpack_node_power_watts < EMMY.node_tdp_watts * 1.5
        assert MEGGIE.linpack_node_power_watts < MEGGIE.node_tdp_watts * 1.5

    def test_registry(self):
        assert known_systems() == ["alex", "emmy", "meggie", "woody"]
        assert get_spec("EMMY") is EMMY

    def test_gpu_inventory(self):
        alex = get_spec("alex")
        assert alex.has_gpus and alex.total_gpus == 82 * 8
        assert alex.gpus_on(0) == 8 and alex.gpus_on(81) == 8
        woody = get_spec("woody")
        assert woody.gpu_node_count == 32
        assert woody.gpus_on(31) == 4 and woody.gpus_on(32) == 0
        assert not EMMY.has_gpus and EMMY.total_gpus == 0

    def test_unknown_system(self):
        with pytest.raises(ClusterError, match="unknown system"):
            get_spec("summit")

    def test_invalid_spec_rejected(self):
        with pytest.raises(ClusterError):
            SystemSpec(
                **{
                    **{f: getattr(EMMY, f) for f in EMMY.__dataclass_fields__},
                    "num_nodes": 0,
                }
            )


class TestVariability:
    def test_factors_centered_on_one(self, rng):
        factors = VariabilityModel(sigma=0.04).draw_factors(5000, rng)
        assert abs(factors.mean() - 1.0) < 0.01
        assert abs(factors.std() - 0.04) < 0.01

    def test_clipping(self, rng):
        factors = VariabilityModel(sigma=0.3, clip=0.1).draw_factors(1000, rng)
        assert factors.min() >= 0.9 and factors.max() <= 1.1

    def test_zero_sigma(self, rng):
        factors = VariabilityModel(sigma=0.0).draw_factors(10, rng)
        np.testing.assert_array_equal(factors, np.ones(10))

    def test_invalid_params(self):
        with pytest.raises(ClusterError):
            VariabilityModel(sigma=-0.1)
        with pytest.raises(ClusterError):
            VariabilityModel(clip=0.9)

    def test_bad_count(self, rng):
        with pytest.raises(ClusterError):
            VariabilityModel().draw_factors(0, rng)


class TestNode:
    def test_effective_power_clipped(self):
        node = Node(node_id=0, system="emmy", tdp_watts=200.0, power_factor=1.1, idle_watts=40.0)
        assert node.effective_power(300.0) == 200.0
        assert node.effective_power(10.0) == 40.0
        assert node.effective_power(100.0) == pytest.approx(110.0)

    def test_invalid_node(self):
        with pytest.raises(ClusterError):
            Node(node_id=0, system="e", tdp_watts=200.0, power_factor=1.0, idle_watts=250.0)

    def test_build_nodes(self, rng):
        nodes = build_nodes(EMMY, rng)
        assert len(nodes) == 560
        assert all(n.tdp_watts == 210.0 for n in nodes)
        assert len({n.node_id for n in nodes}) == 560


class TestCluster:
    def test_from_name(self):
        c = Cluster.from_name("emmy", seed=1)
        assert c.num_nodes == 560
        assert c.name == "emmy"
        assert c.total_tdp_watts == EMMY.total_tdp_watts

    def test_scaled_down(self):
        c = Cluster.from_name("meggie", seed=1, num_nodes=32)
        assert c.num_nodes == 32
        assert c.node_tdp_watts == 195.0

    def test_deterministic_factors(self):
        a = Cluster.from_name("emmy", seed=9).power_factors
        b = Cluster.from_name("emmy", seed=9).power_factors
        np.testing.assert_array_equal(a, b)

    def test_factors_read_only(self):
        c = Cluster.from_name("emmy", seed=1, num_nodes=4)
        with pytest.raises(ValueError):
            c.power_factors[0] = 2.0

    def test_node_lookup_bounds(self):
        c = Cluster.from_name("emmy", seed=1, num_nodes=4)
        assert c.node(3).node_id == 3
        with pytest.raises(ClusterError):
            c.node(4)

    def test_invalid_override(self):
        with pytest.raises(ClusterError):
            Cluster.from_name("emmy", num_nodes=0)


class TestLinpack:
    def test_draw_near_tdp(self, rng):
        power = linpack_power_draw(EMMY, num_nodes=8, duration_minutes=30, rng=rng)
        assert power.shape == (8, 30)
        steady = power[:, 5:]
        assert steady.mean() > 0.9 * EMMY.node_tdp_watts
        assert power.max() <= EMMY.node_tdp_watts
        assert LINPACK_TDP_FRACTION > 0.95

    def test_warmup_lower(self, rng):
        power = linpack_power_draw(EMMY, num_nodes=4, duration_minutes=10, rng=rng)
        assert power[:, 0].mean() < power[:, 5].mean()

    def test_invalid_args(self, rng):
        with pytest.raises(ClusterError):
            linpack_power_draw(EMMY, num_nodes=0, duration_minutes=5, rng=rng)
