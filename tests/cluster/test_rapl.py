"""Tests for the RAPL measurement model."""

import numpy as np
import pytest

from repro.cluster import EMMY, RaplModel, RaplSample
from repro.cluster.rapl import average_to_minutes
from repro.errors import TelemetryError


class TestAveraging:
    def test_exact_minutes(self):
        signal = np.ones((2, 120))  # 2 nodes, 120 one-second steps
        out = average_to_minutes(signal, seconds_per_step=1.0)
        assert out.shape == (2, 2)
        np.testing.assert_allclose(out, 1.0)

    def test_partial_trailing_minute(self):
        signal = np.concatenate([np.full(60, 2.0), np.full(30, 4.0)])
        out = average_to_minutes(signal, seconds_per_step=1.0)
        assert out.shape == (2,)
        assert out[0] == pytest.approx(2.0)
        assert out[1] == pytest.approx(4.0)

    def test_averaging_not_sampling(self):
        """A 1-minute sample is the mean of the minute, not a point value."""
        signal = np.zeros(60)
        signal[::2] = 100.0  # alternating 100/0 each second
        out = average_to_minutes(signal, seconds_per_step=1.0)
        assert out[0] == pytest.approx(50.0)

    def test_minute_resolution_input(self):
        signal = np.asarray([[10.0, 20.0, 30.0]])
        out = average_to_minutes(signal, seconds_per_step=60.0)
        np.testing.assert_allclose(out, signal)

    def test_rejects_3d(self):
        with pytest.raises(TelemetryError):
            average_to_minutes(np.zeros((2, 2, 2)))

    def test_rejects_supra_minute_steps(self):
        with pytest.raises(TelemetryError):
            average_to_minutes(np.zeros(10), seconds_per_step=120.0)


class TestRaplModel:
    def test_domain_split(self, rng):
        model = RaplModel(EMMY, noise_sigma=0.0)
        true_power = np.full((3, 5), 100.0)
        pkg, dram = model.measure(true_power, rng)
        np.testing.assert_allclose(pkg + dram, 100.0)
        np.testing.assert_allclose(dram, 100.0 * EMMY.dram_power_fraction)

    def test_noise_is_small_and_unbiased(self, rng):
        model = RaplModel(EMMY, noise_sigma=0.01)
        true_power = np.full((1, 10000), 100.0)
        measured = model.measure_total(true_power, rng)
        assert abs(measured.mean() - 100.0) < 0.5
        assert 0.5 < measured.std() < 1.5

    def test_never_negative(self, rng):
        model = RaplModel(EMMY, noise_sigma=0.5)
        measured = model.measure_total(np.full((2, 50), 0.5), rng)
        assert np.all(measured >= 0)

    def test_invalid_noise(self):
        with pytest.raises(TelemetryError):
            RaplModel(EMMY, noise_sigma=-0.1)

    def test_sample_total(self):
        s = RaplSample(node_id=1, minute=0, pkg_watts=80.0, dram_watts=20.0)
        assert s.total_watts == 100.0
