"""GpuSampler: chunked-vs-monolithic bit identity and board allocation.

The GPU stream's contract mirrors the CPU aggregate fast path: one
standard normal per *allocated board*, in job order, and chunks holding
no GPU jobs consume nothing — so any chunking of the scheduled stream
concatenates bit-identically to one monolithic sweep.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler import simulate
from repro.telemetry.dataset import build_inputs
from repro.telemetry.sampler import GpuSampler
from repro.workload.generator import WorkloadGenerator

_CACHE: dict[str, tuple] = {}


def _scheduled(system):
    """Cluster + scheduled jobs, cached — hypothesis re-enters the test."""
    if system not in _CACHE:
        cluster, params = build_inputs(
            system, seed=13, num_users=12, horizon_s=4 * 86400
        )
        specs = WorkloadGenerator(params, cluster.num_nodes, seed=13).generate()
        _CACHE[system] = (cluster, simulate(specs, cluster.num_nodes))
    return _CACHE[system]


class TestBitIdentity:
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_chunked_concatenates_to_monolithic(self, data):
        cluster, scheduled = _scheduled("alex")
        cuts = sorted(data.draw(st.lists(
            st.integers(0, len(scheduled)), max_size=4
        )))
        mono = GpuSampler(cluster, np.random.default_rng(21))
        power, count = mono.sample_batch(scheduled)
        chunked = GpuSampler(cluster, np.random.default_rng(21))
        parts = []
        for lo, hi in zip([0, *cuts], [*cuts, len(scheduled)]):
            parts.append(chunked.sample_batch(scheduled[lo:hi]))
        np.testing.assert_array_equal(
            power, np.concatenate([p for p, _ in parts])
        )
        np.testing.assert_array_equal(
            count, np.concatenate([c for _, c in parts])
        )

    def test_stream_state_matches_after_chunking(self):
        cluster, scheduled = _scheduled("alex")
        a = GpuSampler(cluster, np.random.default_rng(5))
        b = GpuSampler(cluster, np.random.default_rng(5))
        a.sample_batch(scheduled)
        for job in scheduled:
            b.sample_batch([job])
        assert a._rng.standard_normal() == b._rng.standard_normal()

    def test_gpu_free_chunk_consumes_no_draws(self):
        """A chunk of CPU-only jobs must leave the stream untouched."""
        cluster, scheduled = _scheduled("woody")
        cpu_jobs = [j for j in scheduled if getattr(j.spec, "gpus", 0) == 0]
        assert cpu_jobs, "woody's mixed catalog should schedule CPU jobs"
        rng = np.random.default_rng(8)
        power, count = GpuSampler(cluster, rng).sample_batch(cpu_jobs)
        assert (power == 0).all() and (count == 0).all()
        assert rng.standard_normal() == np.random.default_rng(8).standard_normal()

    def test_empty_batch(self):
        cluster, _ = _scheduled("alex")
        power, count = GpuSampler(
            cluster, np.random.default_rng(0)
        ).sample_batch([])
        assert power.shape == (0,) and count.shape == (0,)


class TestAllocation:
    def test_boards_capped_by_installed_inventory(self):
        """min(requested, installed) per node: jobs placed on woody's
        CPU-only nodes run GPU-starved, deterministically."""
        cluster, scheduled = _scheduled("woody")
        installed = cluster.gpu_counts
        _, count = GpuSampler(
            cluster, np.random.default_rng(1)
        ).sample_batch(scheduled)
        starved = 0
        for i, job in enumerate(scheduled):
            requested = getattr(job.spec, "gpus", 0)
            expected = int(
                np.minimum(installed[job.node_ids], requested).sum()
            )
            assert count[i] == expected
            if requested > 0 and expected < requested * job.spec.nodes:
                starved += 1
        assert starved > 0, "expected some GPU jobs placed off the island"

    def test_power_positive_iff_boards_allocated(self):
        cluster, scheduled = _scheduled("alex")
        power, count = GpuSampler(
            cluster, np.random.default_rng(2)
        ).sample_batch(scheduled)
        np.testing.assert_array_equal(power > 0, count > 0)
        boarded = count > 0
        # Board power stays within the model's physical envelope.
        per_board = power[boarded] / count[boarded]
        assert (per_board <= cluster.spec.gpu_tdp_watts).all()
        assert (per_board > 0).all()
