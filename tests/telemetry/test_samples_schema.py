"""Tests for the time-resolved node-sample schema."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.telemetry import (
    load_samples,
    samples_table,
    save_samples,
    traces_from_samples,
)
from repro.telemetry.samples_schema import validate_samples


class TestSamplesTable:
    def test_row_count(self, emmy_small):
        samples = samples_table(emmy_small)
        expected = sum(t.matrix.size for t in emmy_small.traces.values())
        assert len(samples) == expected

    def test_schema_valid(self, emmy_small):
        validate_samples(samples_table(emmy_small))

    def test_physical_node_ids_recorded(self, emmy_small):
        samples = samples_table(emmy_small)
        assert samples["node_id"].max() < emmy_small.spec.num_nodes

    def test_requires_traces(self, emmy_small):
        import dataclasses

        with pytest.raises(SchemaError):
            samples_table(dataclasses.replace(emmy_small, traces={}))


class TestRoundTrip:
    def test_traces_reconstructed_exactly(self, emmy_small):
        samples = samples_table(emmy_small)
        traces, allocations = traces_from_samples(samples, emmy_small.jobs)
        assert set(traces) == set(emmy_small.traces)
        for job_id, original in emmy_small.traces.items():
            np.testing.assert_array_equal(traces[job_id].matrix, original.matrix)
            assert traces[job_id].user_id == original.user_id
            np.testing.assert_array_equal(
                allocations[job_id], emmy_small.trace_allocations[job_id]
            )

    def test_identity_placeholder_without_jobs(self, emmy_small):
        samples = samples_table(emmy_small)
        traces, _ = traces_from_samples(samples)
        assert next(iter(traces.values())).user_id == "unknown"

    def test_metrics_survive_roundtrip(self, emmy_small):
        """Temporal/spatial metrics from reloaded samples match exactly."""
        samples = samples_table(emmy_small)
        traces, _ = traces_from_samples(samples, emmy_small.jobs)
        for job_id, original in emmy_small.traces.items():
            rebuilt = traces[job_id]
            assert rebuilt.peak_overshoot() == original.peak_overshoot()
            assert rebuilt.avg_spatial_spread() == original.avg_spatial_spread()

    def test_missing_samples_rejected(self, emmy_small):
        samples = samples_table(emmy_small).take(slice(0, -1))  # drop one row
        with pytest.raises(SchemaError, match="expected"):
            traces_from_samples(samples)


class TestPersistence:
    def test_npz_roundtrip(self, emmy_small, tmp_path):
        samples = samples_table(emmy_small)
        path = tmp_path / "samples.npz"
        save_samples(samples, path)
        assert load_samples(path) == samples

    def test_csv_roundtrip(self, emmy_small, tmp_path):
        samples = samples_table(emmy_small).head(500)
        path = tmp_path / "samples.csv"
        save_samples(samples, path)
        back = load_samples(path)
        np.testing.assert_allclose(back["power_w"], samples["power_w"])

    def test_bad_suffix(self, emmy_small, tmp_path):
        with pytest.raises(SchemaError, match="suffix"):
            save_samples(samples_table(emmy_small), tmp_path / "x.parquet")

    def test_negative_power_rejected(self, emmy_small):
        samples = samples_table(emmy_small)
        bad = samples.with_column("power_w", -samples["power_w"])
        with pytest.raises(SchemaError, match="non-negative"):
            validate_samples(bad)
