"""Tests for SWF export/import interoperability."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.scheduler import simulate
from repro.telemetry.swf import SWF_FIELDS, jobspecs_from_swf, load_swf, save_swf


class TestSaveLoad:
    @pytest.fixture()
    def swf_path(self, emmy_small, tmp_path):
        path = tmp_path / "trace.swf"
        save_swf(emmy_small, path)
        return path

    def test_header_present(self, swf_path):
        text = swf_path.read_text()
        assert text.startswith("; SWF version: 2.2")
        assert "; Computer: emmy" in text
        assert "; UserID mapping:" in text

    def test_roundtrip_counts(self, emmy_small, swf_path):
        table = load_swf(swf_path)
        assert len(table) == emmy_small.num_jobs
        assert list(table.column_names) == list(SWF_FIELDS)

    def test_roundtrip_values(self, emmy_small, swf_path):
        table = load_swf(swf_path).sort_by("job_number")
        jobs = emmy_small.jobs.sort_by("job_id")
        np.testing.assert_array_equal(table["run_time"], jobs["runtime_s"])
        np.testing.assert_array_equal(table["allocated_processors"], jobs["nodes"])
        np.testing.assert_array_equal(table["requested_time"], jobs["req_walltime_s"])
        np.testing.assert_array_equal(table["wait_time"], jobs["wait_s"])

    def test_submit_order(self, swf_path):
        table = load_swf(swf_path)
        assert np.all(np.diff(table["submit_time"]) >= 0)

    def test_missing_fields_are_minus_one(self, swf_path):
        table = load_swf(swf_path)
        assert np.all(table["used_memory"] == -1)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.swf"
        path.write_text("1 2 3\n")
        with pytest.raises(SchemaError, match="expected 18 fields"):
            load_swf(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.swf"
        path.write_text("; only comments\n")
        with pytest.raises(SchemaError, match="no job records"):
            load_swf(path)


class TestJobSpecsFromSwf:
    def test_reschedulable(self, emmy_small, tmp_path):
        """An exported trace can be re-imported and re-scheduled."""
        path = tmp_path / "trace.swf"
        save_swf(emmy_small, path)
        specs = jobspecs_from_swf(load_swf(path), system="emmy")
        assert len(specs) == emmy_small.num_jobs
        out = simulate(specs, emmy_small.spec.num_nodes)
        assert len(out) == len(specs)

    def test_constant_power_model(self, emmy_small, tmp_path):
        path = tmp_path / "trace.swf"
        save_swf(emmy_small, path)
        specs = jobspecs_from_swf(load_swf(path), power_fraction=0.55)
        assert all(s.power_fraction == 0.55 for s in specs)

    def test_callable_power_model(self, emmy_small, tmp_path):
        path = tmp_path / "trace.swf"
        save_swf(emmy_small, path)
        specs = jobspecs_from_swf(
            load_swf(path),
            power_fraction=lambda user, procs, wall: 0.5 + 0.01 * (user % 10),
        )
        assert len({s.power_fraction for s in specs}) > 1

    def test_missing_fields_rejected(self, emmy_small, tmp_path):
        path = tmp_path / "trace.swf"
        save_swf(emmy_small, path)
        table = load_swf(path).drop("run_time")
        with pytest.raises(SchemaError, match="lacks fields"):
            jobspecs_from_swf(table)
