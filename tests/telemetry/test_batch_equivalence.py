"""Batched telemetry sampling vs the per-job path, bit for bit.

``PowerSampler.sample_aggregate_batch`` replaces tens of thousands of
tiny normal/clip calls with a handful of fused vectorized sweeps, but it
must consume the *same RNG draws in the same order* and produce the
*same floats* as calling ``sample_aggregate`` per job — the pipeline
cache and every golden artifact depend on it. A pinned-seed NPZ digest
guards the whole dataset path end to end.
"""

import hashlib

import numpy as np

from repro.scheduler import simulate
from repro.telemetry.dataset import build_inputs, generate_dataset
from repro.telemetry.sampler import PowerSampler
from repro.telemetry.schema import save_jobs_npz
from repro.workload.generator import WorkloadGenerator

# sha256 of the jobs NPZ written from generate_dataset("emmy", seed=7,
# num_nodes=64, num_users=24, horizon_s=10 days, max_traces=50), with
# write_npz's pinned deflate level 1 (re-pinned when the level changed;
# see docs/PERFORMANCE.md).
GOLDEN_SMALL_NPZ = "6934d59e6c1eee93547a74f394fc1f19eac8ef4aee14d273559051bdcc847824"


def _scheduled(system="emmy", seed=11, num_nodes=48, num_users=16, days=5):
    cluster, params = build_inputs(
        system, seed=seed, num_nodes=num_nodes, num_users=num_users,
        horizon_s=days * 86400,
    )
    specs = WorkloadGenerator(params, cluster.num_nodes, seed=seed).generate()
    return cluster, simulate(specs, cluster.num_nodes)


class TestBatchEquivalence:
    def test_batch_matches_per_job_exactly(self):
        cluster, scheduled = _scheduled()
        batch = PowerSampler(cluster, np.random.default_rng(3))
        loop = PowerSampler(cluster, np.random.default_rng(3))
        pernode, psum = batch.sample_aggregate_batch(scheduled)
        assert pernode.shape == psum.shape == (len(scheduled),)
        for i, job in enumerate(scheduled):
            measured = loop.sample_aggregate(job)
            assert psum[i] == measured.sum(), job.spec.job_id
            assert pernode[i] == measured.sum() / job.spec.nodes, job.spec.job_id

    def test_batch_advances_rng_identically(self):
        """After batching, both samplers' streams are in the same state."""
        cluster, scheduled = _scheduled(days=3)
        rng_a, rng_b = np.random.default_rng(9), np.random.default_rng(9)
        a = PowerSampler(cluster, rng_a)
        b = PowerSampler(cluster, rng_b)
        a.sample_aggregate_batch(scheduled)
        for job in scheduled:
            b.sample_aggregate(job)
        assert rng_a.standard_normal() == rng_b.standard_normal()

    def test_empty_batch(self):
        cluster, _ = _scheduled(days=3)
        pernode, psum = PowerSampler(
            cluster, np.random.default_rng(0)
        ).sample_aggregate_batch([])
        assert pernode.shape == (0,)
        assert psum.shape == (0,)


def test_golden_jobs_npz_digest(tmp_path):
    """The full dataset artifact is byte-stable at a pinned seed."""
    ds = generate_dataset(
        system="emmy", seed=7, num_nodes=64, num_users=24,
        horizon_s=10 * 86400, max_traces=50,
    )
    path = tmp_path / "jobs.npz"
    save_jobs_npz(ds.jobs, path)
    digest = hashlib.sha256(path.read_bytes()).hexdigest()
    assert digest == GOLDEN_SMALL_NPZ
