"""Tests for sampling, traces, dataset assembly, and the schema."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.errors import SchemaError, TelemetryError
from repro.scheduler.job import ScheduledJob
from repro.telemetry import JobPowerTrace, PowerSampler, generate_dataset
from repro.telemetry.schema import (
    JOB_COLUMNS,
    load_jobs_csv,
    load_jobs_npz,
    save_jobs_csv,
    save_jobs_npz,
    validate_jobs,
)
from repro.workload.generator import JobSpec
from repro.workload.phases import TemporalProfile
from repro.workload.spatial import SpatialModel


def scheduled_job(nodes=4, runtime=1800, fraction=0.7, kind="flat"):
    spec = JobSpec(
        job_id=1,
        user_id="u0001",
        app="gromacs",
        system="emmy",
        class_id=0,
        nodes=nodes,
        req_walltime_s=max(3600, runtime),
        runtime_s=runtime,
        submit_s=0,
        power_fraction=fraction,
        profile=TemporalProfile(kind=kind, amp=0.3, duty=0.2),
        spatial=SpatialModel(static_sigma=0.03),
    )
    return ScheduledJob(spec=spec, start_s=0, node_ids=np.arange(nodes))


class TestPowerSampler:
    @pytest.fixture()
    def sampler(self, rng):
        cluster = Cluster.from_name("emmy", seed=0, num_nodes=16)
        return PowerSampler(cluster, rng)

    def test_aggregate_shape_and_level(self, sampler):
        levels = sampler.sample_aggregate(scheduled_job())
        assert levels.shape == (4,)
        # Nominal draw is 0.7 * 210 = 147 W, modulated by ~±5% factors.
        assert 120 < levels.mean() < 175
        assert np.all(levels <= 210.0)

    def test_matrix_shape(self, sampler):
        matrix = sampler.sample_matrix(scheduled_job(nodes=3, runtime=1800))
        assert matrix.shape == (3, 30)
        assert np.all((matrix >= 0) & (matrix <= 210.0))

    def test_matrix_mean_tracks_aggregate(self, sampler):
        job = scheduled_job(nodes=6, runtime=7200)
        matrix = sampler.sample_matrix(job)
        assert matrix.mean() == pytest.approx(0.7 * 210.0, rel=0.10)

    def test_high_fraction_clipped_at_tdp(self, sampler):
        matrix = sampler.sample_matrix(scheduled_job(fraction=0.99))
        assert matrix.max() <= 210.0


class TestJobPowerTrace:
    def make_trace(self, matrix) -> JobPowerTrace:
        return JobPowerTrace(
            job_id=1, user_id="u1", app="gromacs", system="emmy",
            matrix=np.asarray(matrix, dtype=float),
        )

    def test_per_node_power(self):
        t = self.make_trace([[100.0, 100.0], [200.0, 200.0]])
        assert t.per_node_power() == 150.0

    def test_temporal_metrics_flat(self):
        t = self.make_trace(np.full((2, 100), 100.0))
        assert t.temporal_cov() == 0.0
        assert t.peak_overshoot() == 0.0
        assert t.fraction_time_above(0.10) == 0.0

    def test_peak_overshoot(self):
        series = np.full(100, 100.0)
        series[10] = 150.0
        t = self.make_trace(series[None, :])
        assert t.peak_overshoot() == pytest.approx(0.5 / 1.005, rel=0.02)

    def test_fraction_time_above(self):
        series = np.full(100, 100.0)
        series[:20] = 130.0  # mean = 106; 130 > 1.1*106
        t = self.make_trace(series[None, :])
        assert t.fraction_time_above(0.10) == pytest.approx(0.20)

    def test_spatial_spread(self):
        m = np.vstack([np.full(50, 100.0), np.full(50, 120.0)])
        t = self.make_trace(m)
        assert t.avg_spatial_spread() == pytest.approx(20.0)
        assert t.spatial_spread_fraction() == pytest.approx(20.0 / 110.0)

    def test_single_node_spread_zero(self):
        t = self.make_trace(np.full((1, 30), 100.0))
        assert t.avg_spatial_spread() == 0.0
        assert t.fraction_time_spread_above_average() == 0.0

    def test_energy_imbalance(self):
        m = np.vstack([np.full(60, 100.0), np.full(60, 115.0)])
        t = self.make_trace(m)
        assert t.energy_imbalance_fraction() == pytest.approx(0.15)

    def test_validation(self):
        with pytest.raises(TelemetryError):
            self.make_trace(np.full((2, 2), -1.0))
        with pytest.raises(TelemetryError):
            self.make_trace(np.zeros((0, 5)))


class TestDatasetAssembly:
    def test_schema_complete(self, emmy_small):
        validate_jobs(emmy_small.jobs)

    def test_counts_consistent(self, emmy_small):
        ds = emmy_small
        assert ds.num_jobs == len(ds.jobs)
        assert len(ds.traces) > 0
        assert ds.num_minutes >= ds.horizon_s // 60

    def test_instrumented_flags_match_traces(self, emmy_small):
        flagged = set(
            emmy_small.jobs["job_id"][emmy_small.jobs["instrumented"]].tolist()
        )
        assert flagged == set(emmy_small.traces)

    def test_timeline_never_exceeds_capacity(self, emmy_small):
        assert emmy_small.active_nodes.max() <= emmy_small.spec.num_nodes

    def test_power_below_provisioned(self, emmy_small):
        assert np.all(
            emmy_small.total_power_watts() <= emmy_small.spec.total_tdp_watts
        )

    def test_pernode_power_physical(self, emmy_small):
        power = emmy_small.jobs["pernode_power_w"]
        assert np.all(power > 0)
        assert np.all(power <= emmy_small.spec.node_tdp_watts)

    def test_energy_consistent_with_power(self, emmy_small):
        jobs = emmy_small.jobs
        implied = jobs["pernode_power_w"] * jobs["nodes"] * jobs["runtime_s"]
        np.testing.assert_allclose(jobs["energy_j"], implied, rtol=1e-6)

    def test_deterministic(self):
        a = generate_dataset("emmy", seed=3, num_nodes=20, num_users=8,
                             horizon_s=2 * 86400, max_traces=5)
        b = generate_dataset("emmy", seed=3, num_nodes=20, num_users=8,
                             horizon_s=2 * 86400, max_traces=5)
        np.testing.assert_array_equal(
            a.jobs["pernode_power_w"], b.jobs["pernode_power_w"]
        )

    def test_trace_table(self, emmy_small):
        t = emmy_small.trace_table()
        assert len(t) == len(emmy_small.traces)
        assert "peak_overshoot" in t


class TestSchema:
    def test_csv_roundtrip(self, emmy_small, tmp_path):
        path = tmp_path / "jobs.csv"
        save_jobs_csv(emmy_small.jobs, path)
        back = load_jobs_csv(path)
        assert len(back) == emmy_small.num_jobs
        np.testing.assert_allclose(
            back["pernode_power_w"], emmy_small.jobs["pernode_power_w"]
        )
        assert back["is_debug"].dtype.kind == "b"

    def test_npz_roundtrip(self, emmy_small, tmp_path):
        path = tmp_path / "jobs.npz"
        save_jobs_npz(emmy_small.jobs, path)
        back = load_jobs_npz(path)
        np.testing.assert_array_equal(back["job_id"], emmy_small.jobs["job_id"])

    def test_missing_column_rejected(self, emmy_small):
        with pytest.raises(SchemaError, match="missing"):
            validate_jobs(emmy_small.jobs.drop("pernode_power_w"))

    def test_duplicate_job_ids_rejected(self, emmy_small):
        bad = emmy_small.jobs.with_column(
            "job_id", np.zeros(emmy_small.num_jobs, dtype=np.int64)
        )
        with pytest.raises(SchemaError, match="unique"):
            validate_jobs(bad)

    def test_wrong_dtype_rejected(self, emmy_small):
        bad = emmy_small.jobs.with_column(
            "nodes", emmy_small.jobs["nodes"].astype(float)
        )
        with pytest.raises(SchemaError, match="dtype"):
            validate_jobs(bad)

    def test_all_schema_columns_documented(self):
        assert set(JOB_COLUMNS) >= {"job_id", "user", "app", "pernode_power_w"}
