"""Shared fixtures and harness shims used across the test suites."""
