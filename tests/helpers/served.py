"""The one way tests stand up a served system.

Every suite that needs a live HTTP front-end — ``tests/serve``,
``tests/faults``, ``tests/incidents`` — used to hand-roll the same
``PredictionServer(...)`` / ``serve_in_background()`` / ``close()``
dance (each copy with its own port-collision flake). They now share
:class:`~repro.incidents.harness.ServedSystem`, re-exported here so
test modules depend on one helper path rather than the incidents
package layout.

Typical fixture::

    from tests.helpers.served import ServedSystem

    @pytest.fixture(scope="module")
    def server(service):
        # Fronts a caller-owned service; stop() leaves the service open.
        with ServedSystem(service=service) as system:
            yield system

or, building the whole stack from a scenario spec::

    with ServedSystem(tiny_spec, cache_dir=serve_cache, warm=("BDT",)) as s:
        status, headers, body = s.post("/predict", {"jobs": records})

:func:`served` is the same thing as a plain context-manager function,
for call sites that read better without the class name.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.incidents.harness import ServedSystem

__all__ = ["ServedSystem", "served"]


@contextmanager
def served(*args, **kwargs) -> Iterator[ServedSystem]:
    """Start a :class:`ServedSystem` for the block; always stop it."""
    system = ServedSystem(*args, **kwargs)
    try:
        yield system.start()
    finally:
        system.stop()
