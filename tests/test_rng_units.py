"""Tests for the RNG factory and unit helpers."""

import numpy as np
import pytest

from repro.rng import RngFactory, spawn_rngs
from repro.units import (
    DAY,
    HOUR,
    MINUTE,
    energy_joules,
    hours,
    joules_to_kwh,
    minutes,
    node_seconds_to_node_hours,
    watts_to_kilowatts,
)


class TestRngFactory:
    def test_same_name_same_stream(self):
        a = RngFactory(7).get("x").random(5)
        b = RngFactory(7).get("x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        f = RngFactory(7)
        assert not np.array_equal(f.get("x").random(5), f.get("y").random(5))

    def test_order_independent(self):
        f1 = RngFactory(7)
        _ = f1.get("a").random()
        x1 = f1.get("b").random()
        f2 = RngFactory(7)
        x2 = f2.get("b").random()
        assert x1 == x2

    def test_different_seeds_differ(self):
        assert RngFactory(1).get("x").random() != RngFactory(2).get("x").random()

    def test_child_is_deterministic(self):
        a = RngFactory(3).child("sub").get("s").random()
        b = RngFactory(3).child("sub").get("s").random()
        assert a == b

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(0).get("")

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngFactory("seed")

    def test_spawn_rngs_independent(self):
        streams = list(spawn_rngs(5, 3))
        assert len(streams) == 3
        values = [s.random() for s in streams]
        assert len(set(values)) == 3

    def test_spawn_rngs_negative(self):
        with pytest.raises(ValueError):
            list(spawn_rngs(0, -1))


class TestUnits:
    def test_constants(self):
        assert MINUTE == 60 and HOUR == 3600 and DAY == 86400

    def test_minutes_hours(self):
        assert minutes(2) == 120.0
        assert hours(1.5) == 5400.0

    def test_watts_to_kilowatts(self):
        assert watts_to_kilowatts(1500.0) == 1.5
        np.testing.assert_allclose(watts_to_kilowatts([1000, 2000]), [1.0, 2.0])

    def test_joules_to_kwh(self):
        assert joules_to_kwh(3.6e6) == 1.0

    def test_node_hours(self):
        assert node_seconds_to_node_hours(7200) == 2.0

    def test_energy(self):
        assert energy_joules(100.0, 60.0) == 6000.0

    def test_energy_negative_duration(self):
        with pytest.raises(ValueError):
            energy_joules(100.0, -1.0)
