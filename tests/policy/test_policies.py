"""Tests for power-capping, over-provisioning, and pricing policies."""

import numpy as np
import pytest

from repro.errors import PolicyError
from repro.policy import (
    StaticCapPolicy,
    compare_pricing,
    evaluate_capping,
    evaluate_overprovisioning,
)


class TestCapping:
    def test_policy_cap_level(self):
        policy = StaticCapPolicy(headroom=0.15)
        assert policy.cap_for(100.0) == pytest.approx(115.0)

    def test_negative_headroom_rejected(self):
        with pytest.raises(PolicyError):
            StaticCapPolicy(headroom=-0.1)

    def test_replay_on_dataset(self, emmy_small):
        outcome = evaluate_capping(emmy_small)
        assert outcome.n_jobs == len(emmy_small.traces)
        assert 0 <= outcome.throttled_node_minute_fraction <= 1
        assert 0 <= outcome.frac_jobs_unthrottled <= 1
        # The paper's premise: predicted+15% caps rarely bind.
        assert outcome.throttled_node_minute_fraction < 0.15
        assert outcome.provisioned_power_saved_fraction > 0.0

    def test_larger_headroom_throttles_less(self, emmy_small):
        tight = evaluate_capping(emmy_small, StaticCapPolicy(headroom=0.02))
        loose = evaluate_capping(emmy_small, StaticCapPolicy(headroom=0.30))
        assert (
            loose.throttled_node_minute_fraction
            <= tight.throttled_node_minute_fraction
        )
        assert loose.frac_jobs_unthrottled >= tight.frac_jobs_unthrottled

    def test_prediction_error_hurts(self, emmy_small):
        perfect = evaluate_capping(emmy_small, prediction_error=0.0)
        biased = evaluate_capping(emmy_small, prediction_error=0.10)
        assert (
            biased.throttled_node_minute_fraction
            >= perfect.throttled_node_minute_fraction
        )

    def test_invalid_prediction_error(self, emmy_small):
        with pytest.raises(PolicyError):
            evaluate_capping(emmy_small, prediction_error=1.0)


class TestOverprovisioning:
    def test_extra_nodes_fit(self, emmy_small):
        outcome = evaluate_overprovisioning(emmy_small)
        assert outcome.supported_nodes >= outcome.original_nodes
        assert outcome.extra_nodes == outcome.supported_nodes - outcome.original_nodes
        assert outcome.throughput_gain >= 0.0
        # Stranded power must buy a real gain when sized to the typical
        # (rather than worst-minute) draw; small replicas have noisy p99.
        relaxed = evaluate_overprovisioning(emmy_small, sizing_quantile=0.9)
        assert relaxed.throughput_gain > 0.05
        assert 0 <= outcome.budget_exceedance_fraction <= 1

    def test_tighter_quantile_more_nodes(self, emmy_small):
        aggressive = evaluate_overprovisioning(emmy_small, sizing_quantile=0.5)
        conservative = evaluate_overprovisioning(emmy_small, sizing_quantile=1.0)
        assert aggressive.supported_nodes >= conservative.supported_nodes

    def test_invalid_quantile(self, emmy_small):
        with pytest.raises(PolicyError):
            evaluate_overprovisioning(emmy_small, sizing_quantile=0.0)


class TestPricing:
    def test_comparison(self, emmy_small):
        p = compare_pricing(emmy_small)
        assert p.n_jobs == emmy_small.num_jobs
        # Shares are conserved: mean ratio weighted by node-hours is 1.
        nh = emmy_small.jobs["node_hours"]
        weighted = np.average(p.ratio, weights=nh / nh.sum())
        assert weighted == pytest.approx(1.0)
        assert p.max_mispricing > 0.0

    def test_mispricing_exists(self, emmy_small):
        """Sec 6: node-hour pricing misprices a visible share of jobs."""
        p = compare_pricing(emmy_small)
        assert p.frac_undercharged_10pct + p.frac_overcharged_10pct > 0.05
