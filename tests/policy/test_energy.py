"""Tests for facility energy and cost accounting."""

import numpy as np
import pytest

from repro.errors import PolicyError
from repro.policy import account_energy, user_bills


class TestAccountEnergy:
    def test_consistency(self, emmy_small):
        account = account_energy(emmy_small, price_per_kwh=0.30, pue=1.2)
        assert account.system == "emmy"
        assert account.facility_kwh < account.provisioned_kwh
        assert account.facility_cost == pytest.approx(
            account.facility_kwh * 0.30
        )
        assert account.stranded_cost > 0.0
        # Job energy never exceeds drawn energy (idle floor on top).
        assert account.job_kwh <= account.facility_kwh / account.pue + 1e-9
        assert 0.0 <= account.idle_overhead_fraction < 0.5

    def test_pue_scales_bill(self, emmy_small):
        lean = account_energy(emmy_small, pue=1.0)
        heavy = account_energy(emmy_small, pue=1.5)
        assert heavy.facility_kwh == pytest.approx(1.5 * lean.facility_kwh)

    def test_stranded_cost_matches_utilization_gap(self, emmy_small):
        from repro.analysis import power_utilization

        account = account_energy(emmy_small)
        stranded = power_utilization(emmy_small).stranded_fraction
        assert account.stranded_cost / account.provisioned_cost == pytest.approx(
            stranded, abs=0.02
        )

    def test_validation(self, emmy_small):
        with pytest.raises(PolicyError):
            account_energy(emmy_small, price_per_kwh=0.0)
        with pytest.raises(PolicyError):
            account_energy(emmy_small, pue=0.9)


class TestUserBills:
    def test_bills_conserve_the_pot(self, emmy_small):
        bills = user_bills(emmy_small)
        assert bills["bill_node_hours"].sum() == pytest.approx(
            bills["bill_energy_true"].sum()
        )
        assert bills["delta"].sum() == pytest.approx(0.0, abs=1e-6)

    def test_sorted_by_delta(self, emmy_small):
        bills = user_bills(emmy_small)
        deltas = bills["delta"]
        assert np.all(np.diff(deltas) <= 1e-12)

    def test_high_power_users_gain_under_node_hours(self, emmy_small):
        """Users whose jobs draw above-average power are subsidized by
        node-hour pricing (they pay less than their energy share)."""
        bills = user_bills(emmy_small)
        mean_power = bills["energy_j"] / (bills["node_hours"] * 3600.0)
        # delta > 0 ⇔ node-hour bill above energy bill ⇔ low-power user.
        winners = bills["delta"] < 0
        assert mean_power[winners].mean() > mean_power[~winners].mean()

    def test_covers_all_users(self, emmy_small):
        bills = user_bills(emmy_small)
        assert set(bills["user"].tolist()) == set(
            np.unique(emmy_small.jobs["user"]).tolist()
        )
