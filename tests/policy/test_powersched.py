"""Tests for power-aware scheduling under a system budget."""

import pytest

from repro.errors import PolicyError, SchedulerError
from repro.policy import PowerAwareSimulator, evaluate_power_capped_scheduling
from repro.scheduler.simulator import SchedulerConfig
from repro.workload.generator import JobSpec
from repro.workload.phases import TemporalProfile
from repro.workload.spatial import SpatialModel

TDP = 200.0


def job(job_id, nodes, runtime, submit=0, fraction=0.7, walltime=None):
    return JobSpec(
        job_id=job_id,
        user_id="u0001",
        app="gromacs",
        system="emmy",
        class_id=job_id,
        nodes=nodes,
        req_walltime_s=walltime or max(600, runtime),
        runtime_s=runtime,
        submit_s=submit,
        power_fraction=fraction,
        profile=TemporalProfile(kind="flat"),
        spatial=SpatialModel(static_sigma=0.02),
    )


def oracle(spec: JobSpec) -> float:
    return spec.power_fraction * TDP


def run_capped(jobs, num_nodes, budget_watts, headroom=0.0):
    sim = PowerAwareSimulator(
        SchedulerConfig(num_nodes=num_nodes), budget_watts, oracle, headroom
    )
    return sim.run(jobs)


class TestPowerAwareSimulator:
    def test_unconstrained_budget_matches_baseline(self):
        from repro.scheduler import simulate

        jobs = [job(i, 2, 600, submit=i * 10) for i in range(10)]
        capped = run_capped(jobs, 8, budget_watts=1e9)
        baseline = simulate(jobs, 8)
        assert [(r.spec.job_id, r.start_s) for r in capped] == [
            (r.spec.job_id, r.start_s) for r in baseline
        ]

    def test_budget_serializes_jobs(self):
        # Two 1-node jobs at 140 W each; budget 150 W ⇒ they serialize
        # even though 2 nodes are free.
        jobs = [job(0, 1, 600, fraction=0.7), job(1, 1, 600, fraction=0.7)]
        out = run_capped(jobs, 4, budget_watts=150.0)
        by_id = {r.spec.job_id: r for r in out}
        assert by_id[1].start_s >= by_id[0].end_s

    def test_budget_allows_parallel_under_cap(self):
        jobs = [job(0, 1, 600, fraction=0.5), job(1, 1, 600, fraction=0.5)]
        out = run_capped(jobs, 4, budget_watts=250.0)
        assert all(r.start_s == 0 for r in out)

    def test_commitment_accounting_drains(self):
        sim = PowerAwareSimulator(SchedulerConfig(num_nodes=4), 1000.0, oracle)
        sim.run([job(i, 1, 600, submit=i * 700) for i in range(5)])
        assert sim.committed_watts == pytest.approx(0.0)

    def test_headroom_charged(self):
        # 140 W job with 15% headroom = 161 W; 150 W budget refuses it.
        jobs = [job(0, 1, 600, fraction=0.7)]
        with pytest.raises(SchedulerError, match="exceeds the power budget"):
            run_capped(jobs, 4, budget_watts=150.0, headroom=0.15)

    def test_impossible_single_job_raises(self):
        with pytest.raises(SchedulerError, match="exceeds the power budget"):
            run_capped([job(0, 4, 600, fraction=0.9)], 4, budget_watts=100.0)

    def test_validation(self):
        with pytest.raises(PolicyError):
            PowerAwareSimulator(SchedulerConfig(num_nodes=2), 0.0, oracle)
        with pytest.raises(PolicyError):
            PowerAwareSimulator(SchedulerConfig(num_nodes=2), 10.0, oracle, headroom=-1)


class TestEvaluate:
    def make_stream(self, rng, n=80):
        return [
            job(i, int(rng.integers(1, 3)), int(rng.integers(600, 2400)),
                submit=int(rng.integers(0, 4000)),
                fraction=float(rng.uniform(0.4, 0.9)))
            for i in range(n)
        ]

    def test_tighter_budget_costs_more(self, rng):
        jobs = self.make_stream(rng)
        loose = evaluate_power_capped_scheduling(jobs, 8, TDP, budget_fraction=1.0)
        tight = evaluate_power_capped_scheduling(jobs, 8, TDP, budget_fraction=0.5)
        assert tight.mean_wait_capped_s >= loose.mean_wait_capped_s
        assert tight.makespan_capped_s >= loose.makespan_capped_s

    def test_peak_commitment_within_budget(self, rng):
        jobs = self.make_stream(rng)
        out = evaluate_power_capped_scheduling(jobs, 8, TDP, budget_fraction=0.6)
        assert out.peak_commitment_fraction <= 1.0 + 1e-9

    def test_generous_budget_is_free(self, rng):
        jobs = self.make_stream(rng)
        out = evaluate_power_capped_scheduling(jobs, 8, TDP, budget_fraction=1.0)
        assert out.wait_penalty_s == pytest.approx(0.0, abs=1.0)
        assert out.makespan_penalty == pytest.approx(0.0, abs=1e-6)

    def test_validation(self, rng):
        with pytest.raises(PolicyError):
            evaluate_power_capped_scheduling([], 8, TDP, 0.5)
        with pytest.raises(PolicyError):
            evaluate_power_capped_scheduling(self.make_stream(rng), 8, TDP, 0.0)
