"""Shared fixtures: small, seeded datasets reused across test modules.

The pipeline fixtures are session-scoped — generation is deterministic
for a fixed seed, so sharing them is safe and keeps the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry import JobDataset, generate_dataset


@pytest.fixture(scope="session")
def emmy_small() -> JobDataset:
    """A scaled-down Emmy: ~60 nodes, 10 days, enough jobs for statistics."""
    return generate_dataset(
        "emmy", seed=42, num_nodes=60, num_users=30, horizon_s=10 * 86400, max_traces=150
    )


@pytest.fixture(scope="session")
def meggie_small() -> JobDataset:
    """A scaled-down Meggie."""
    return generate_dataset(
        "meggie", seed=42, num_nodes=80, num_users=25, horizon_s=10 * 86400, max_traces=150
    )


@pytest.fixture(scope="session")
def alex_small() -> JobDataset:
    """The GPU/ML training cluster, small horizon — carries the GPU and
    exit-state job columns (docs/SCENARIOS.md)."""
    return generate_dataset(
        "alex", seed=3, num_users=24, horizon_s=12 * 86400, max_traces=0
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
