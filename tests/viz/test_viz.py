"""Tests for the SVG plotting substrate and figure renderers."""

import xml.dom.minidom

import numpy as np
import pytest

from repro.viz import Chart, LinearScale, SvgDocument, nice_ticks
from repro.viz.charts import pie_chart


def valid_svg(text: str) -> bool:
    xml.dom.minidom.parseString(text)
    return text.startswith("<?xml") and "</svg>" in text


class TestSvgDocument:
    def test_empty_doc(self):
        assert valid_svg(SvgDocument(100, 60).render())

    def test_primitives(self):
        doc = SvgDocument(200, 100)
        doc.rect(0, 0, 200, 100, fill="#fff")
        doc.line(0, 0, 200, 100)
        doc.polyline([(0, 0), (10, 10), (20, 5)])
        doc.polygon([(0, 0), (10, 0), (5, 10)], fill="#f00")
        doc.circle(50, 50, 5)
        doc.path("M 0 0 L 10 10", stroke="#000")
        doc.text(10, 10, "hello <world> & co")
        text = doc.render()
        assert valid_svg(text)
        assert "hello" in text and "&lt;world&gt;" in text

    def test_rotated_text(self):
        doc = SvgDocument(100, 100)
        doc.text(50, 50, "ylabel", rotate=-90)
        assert "rotate(-90" in doc.render()

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SvgDocument(0, 10)

    def test_short_polyline_rejected(self):
        with pytest.raises(ValueError):
            SvgDocument(10, 10).polyline([(0, 0)])

    def test_save(self, tmp_path):
        doc = SvgDocument(50, 50)
        path = tmp_path / "out.svg"
        doc.save(path)
        assert valid_svg(path.read_text())


class TestScale:
    def test_forward_mapping(self):
        s = LinearScale(0, 10, 100, 200)
        assert s(0) == 100.0
        assert s(10) == 200.0
        assert s(5) == 150.0

    def test_inverted_pixels(self):
        s = LinearScale(0, 1, 300, 0)  # y axis: up is smaller pixel
        assert s(0) == 300.0 and s(1) == 0.0

    def test_vectorized(self):
        s = LinearScale(0, 10, 0, 100)
        np.testing.assert_allclose(s(np.asarray([0.0, 5.0, 10.0])), [0, 50, 100])

    def test_degenerate_domain(self):
        s = LinearScale(5, 5, 0, 100)
        assert np.isfinite(s(5))

    def test_nice_ticks_cover_range(self):
        ticks = nice_ticks(0.13, 9.7)
        assert len(ticks) >= 2
        assert ticks[0] >= 0.13 - 1e-9 and ticks[-1] <= 9.7 + 1e-9
        steps = np.diff(ticks)
        np.testing.assert_allclose(steps, steps[0])

    def test_nice_ticks_bad_range(self):
        with pytest.raises(ValueError):
            nice_ticks(float("nan"), 1.0)


class TestChart:
    def test_line_chart(self):
        chart = Chart(title="t", xlabel="x", ylabel="y")
        chart.line([0, 1, 2], [1.0, 3.0, 2.0], label="series")
        assert valid_svg(chart.render())

    def test_cdf_chart(self, rng):
        chart = Chart()
        chart.cdf(rng.random(50), label="cdf")
        assert valid_svg(chart.render())

    def test_histogram_chart(self, rng):
        from repro.stats import histogram_pdf

        pdf = histogram_pdf(rng.normal(size=200))
        chart = Chart()
        chart.histogram(pdf.edges, pdf.density)
        assert valid_svg(chart.render())

    def test_area_and_vline(self):
        chart = Chart()
        chart.area([0, 1, 2], [0.5, 0.8, 0.6], label="used")
        chart.vline(1.0, label="marker")
        assert valid_svg(chart.render())

    def test_grouped_bars(self):
        chart = Chart()
        chart.grouped_bars(
            ["a", "b"], {"g1": [1.0, 2.0], "g2": [1.5, 0.5]},
            errors={"g1": [0.1, 0.2]},
        )
        assert valid_svg(chart.render())

    def test_grouped_bars_validation(self):
        chart = Chart()
        with pytest.raises(ValueError):
            chart.grouped_bars(["a"], {"g": [1.0, 2.0]})

    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError, match="no data"):
            Chart().render()

    def test_histogram_edge_mismatch(self):
        with pytest.raises(ValueError):
            Chart().histogram([0, 1], [1.0, 2.0])

    def test_save(self, tmp_path):
        chart = Chart()
        chart.line([0, 1], [0, 1])
        chart.save(tmp_path / "c.svg")
        assert (tmp_path / "c.svg").exists()


class TestPieChart:
    def test_basic(self):
        svg = pie_chart(["a", "b", "c"], [0.5, 0.3, 0.2], title="pie")
        assert valid_svg(svg)

    def test_normalizes(self):
        assert valid_svg(pie_chart(["a", "b"], [2.0, 2.0]))

    def test_single_full_slice(self):
        assert valid_svg(pie_chart(["a"], [1.0]))

    def test_zero_slice_skipped(self):
        assert valid_svg(pie_chart(["a", "b"], [1.0, 0.0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            pie_chart(["a"], [0.5, 0.5])
        with pytest.raises(ValueError):
            pie_chart(["a"], [-1.0])
        with pytest.raises(ValueError):
            pie_chart(["a", "b"], [0.0, 0.0])


class TestFigureRenderers:
    def test_render_all(self, emmy_small, meggie_small, tmp_path):
        from repro.viz import render_all_figures

        paths = render_all_figures(
            {"emmy": emmy_small, "meggie": meggie_small}, tmp_path, n_repeats=2
        )
        assert len(paths) >= 25
        names = {p.name for p in paths}
        assert "fig04_apps_cross_system.svg" in names
        for p in paths:
            assert valid_svg(p.read_text())

    def test_single_system_skips_fig4(self, emmy_small, tmp_path):
        from repro.viz import render_all_figures

        paths = render_all_figures({"emmy": emmy_small}, tmp_path, n_repeats=2)
        assert not any("fig04" in p.name for p in paths)
