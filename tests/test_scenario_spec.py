"""ScenarioSpec: the one scenario object every layer shares.

Covers validation, serialization, the legacy-keyword shim
(:func:`repro.spec.as_scenario`), digest identity with the pipeline
cache, and the top-level facade built on top of it.
"""

from __future__ import annotations

import argparse
import dataclasses

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.spec import DAY_S, ScenarioSpec, as_scenario


def test_defaults_match_full_production_configuration():
    spec = ScenarioSpec()
    assert spec.system == "emmy"
    assert spec.seed == 0
    assert spec.num_nodes is None and spec.num_users is None
    assert spec.horizon_s is None
    assert spec.max_traces == 2000


def test_derived_views():
    spec = ScenarioSpec("meggie", seed=7, horizon_days=2.5)
    assert spec.horizon_s == round(2.5 * DAY_S)
    assert spec.label == "meggie/seed7"
    assert spec.dataset_kwargs() == {
        "system": "meggie", "seed": 7, "num_nodes": None,
        "num_users": None, "horizon_s": 216000, "max_traces": 2000,
    }


@pytest.mark.parametrize(
    "bad",
    [
        {"system": ""},
        {"num_nodes": 0},
        {"num_users": -1},
        {"horizon_days": 0},
        {"horizon_days": -2},
        {"max_traces": -1},
    ],
)
def test_validation_rejects(bad):
    with pytest.raises(ScenarioError):
        ScenarioSpec(**bad)


def test_frozen_and_hashable():
    spec = ScenarioSpec("emmy", seed=1)
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.seed = 2
    assert spec == ScenarioSpec("emmy", seed=1)
    assert {spec: "ok"}[ScenarioSpec("emmy", seed=1)] == "ok"


def test_replace_revalidates():
    spec = ScenarioSpec("emmy", num_nodes=10)
    assert spec.replace(num_nodes=20).num_nodes == 20
    with pytest.raises(ScenarioError):
        spec.replace(num_nodes=0)


def test_dict_round_trip():
    spec = ScenarioSpec("emmy", seed=9, num_nodes=30, horizon_days=1.5)
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_from_dict_accepts_legacy_horizon_s():
    spec = ScenarioSpec.from_dict({"system": "emmy", "horizon_s": 3 * DAY_S})
    assert spec.horizon_days == 3.0
    with pytest.raises(ScenarioError, match="not both"):
        ScenarioSpec.from_dict({"horizon_s": DAY_S, "horizon_days": 2})
    with pytest.raises(ScenarioError, match="unknown scenario fields"):
        ScenarioSpec.from_dict({"nodes": 4})


def test_from_args_namespace():
    args = argparse.Namespace(
        system="meggie", seed=5, num_nodes=12, num_users=6,
        horizon_days=4.0, max_traces=99,
    )
    assert ScenarioSpec.from_args(args) == ScenarioSpec(
        "meggie", seed=5, num_nodes=12, num_users=6,
        horizon_days=4.0, max_traces=99,
    )


def test_as_scenario_shim_styles():
    spec = ScenarioSpec("emmy", seed=3)
    assert as_scenario(spec) is spec
    assert as_scenario(spec, seed=4) == ScenarioSpec("emmy", seed=4)
    assert as_scenario({"system": "meggie", "seed": 2}) == ScenarioSpec("meggie", seed=2)
    # Legacy positional-system + keyword style, incl. horizon_s.
    assert as_scenario("meggie", horizon_s=2 * DAY_S) == ScenarioSpec(
        "meggie", horizon_days=2.0
    )
    assert as_scenario(seed=11) == ScenarioSpec(seed=11)
    with pytest.raises(ScenarioError, match="positionally and by keyword"):
        as_scenario("emmy", system="meggie")


def test_dataset_digest_matches_pipeline_stage_key():
    from repro.pipeline.config import ShardConfig, stage_key

    spec = ScenarioSpec("emmy", seed=3, num_nodes=24, horizon_days=2)
    assert spec.dataset_digest == stage_key(spec.to_shard_config(), "dataset")
    assert spec.dataset_digest != spec.replace(seed=4).dataset_digest
    assert ShardConfig.from_scenario(spec) == spec.to_shard_config()
    # Pipeline-only knobs pass through to the shard config.
    assert ShardConfig.from_scenario(spec, backfill_depth=7).backfill_depth == 7


def test_facade_generate_dataset_matches_legacy_style():
    import repro
    from repro.telemetry import generate_dataset as legacy

    spec = ScenarioSpec("emmy", seed=3, num_nodes=24, num_users=10,
                        horizon_days=2, max_traces=10)
    via_spec = repro.generate_dataset(spec)
    via_kwargs = legacy(
        "emmy", seed=3, num_nodes=24, num_users=10,
        horizon_s=2 * DAY_S, max_traces=10,
    )
    assert via_spec.num_jobs == via_kwargs.num_jobs
    np.testing.assert_array_equal(
        via_spec.jobs["pernode_power_w"], via_kwargs.jobs["pernode_power_w"]
    )
    # The facade also still accepts the legacy keyword style directly.
    via_facade_kwargs = repro.generate_dataset(
        "emmy", seed=3, num_nodes=24, num_users=10,
        horizon_s=2 * DAY_S, max_traces=10,
    )
    assert via_facade_kwargs.num_jobs == via_spec.num_jobs


def test_facade_cached_build_is_identical(tmp_path):
    import repro

    spec = ScenarioSpec("emmy", seed=3, num_nodes=24, num_users=10,
                        horizon_days=2, max_traces=10)
    direct = repro.generate_dataset(spec)
    cached = repro.generate_dataset(spec, cached=True, cache_dir=tmp_path)
    np.testing.assert_array_equal(
        cached.jobs["pernode_power_w"], direct.jobs["pernode_power_w"]
    )


def test_facade_evaluate_smoke(tmp_path):
    import repro

    spec = ScenarioSpec("emmy", seed=3, num_nodes=24, num_users=10,
                        horizon_days=2, max_traces=10)
    results = repro.evaluate(spec, n_repeats=1, cache_dir=tmp_path)
    assert set(results) >= {"BDT", "KNN", "FLDA"}
    for result in results.values():
        assert 0.0 <= result.summary.frac_below_10pct <= 1.0
