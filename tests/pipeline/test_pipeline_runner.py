"""Runner behavior: parity, warm-cache speedup, parallel determinism."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.pipeline import (
    MANIFEST_NAME,
    ArtifactCache,
    RunManifest,
    ShardConfig,
    build_dataset,
    load_dataset,
    run_pipeline,
    save_dataset,
    stage_key,
)
from repro.telemetry import generate_dataset
from repro.telemetry.schema import save_jobs_csv

TINY = dict(num_nodes=16, num_users=8, horizon_s=2 * 86400, max_traces=5)

SHARDS = [
    ShardConfig(system, seed=seed, **TINY)
    for system in ("emmy", "meggie")
    for seed in (1, 2)
]


def assert_datasets_identical(a, b) -> None:
    """Exact (bitwise) equality of every array the dataset carries."""
    assert a.spec == b.spec
    assert a.horizon_s == b.horizon_s
    assert sorted(a.jobs.column_names) == sorted(b.jobs.column_names)
    for col in a.jobs.column_names:
        assert np.array_equal(a.jobs[col], b.jobs[col]), col
    assert np.array_equal(a.active_nodes, b.active_nodes)
    assert np.array_equal(a.job_power_watts, b.job_power_watts)
    assert list(a.traces) == list(b.traces)
    for jid in a.traces:
        ta, tb = a.traces[jid], b.traces[jid]
        assert (ta.job_id, ta.user_id, ta.app) == (tb.job_id, tb.user_id, tb.app)
        assert np.array_equal(ta.matrix, tb.matrix), jid


class TestBuildDataset:
    def test_matches_generate_dataset_exactly(self, tmp_path):
        direct = generate_dataset("emmy", seed=1, **TINY)
        cached = build_dataset("emmy", seed=1, cache_dir=tmp_path, **TINY)
        assert_datasets_identical(direct, cached)
        # Second call is a cache hit and still identical.
        warm = build_dataset("emmy", seed=1, cache_dir=tmp_path, **TINY)
        assert_datasets_identical(direct, warm)

    def test_partial_invalidation_reuses_schedule(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        build_dataset("emmy", seed=1, cache_dir=tmp_path, **TINY)
        changed = dict(TINY, max_traces=3)
        build_dataset("emmy", seed=1, cache_dir=tmp_path, **changed)
        # workload/schedule shared; telemetry/dataset exist for both.
        assert len(cache.entries("workload")) == 1
        assert len(cache.entries("schedule")) == 1
        assert len(cache.entries("telemetry")) == 2
        assert len(cache.entries("dataset")) == 2


class TestArtifactRoundTrip:
    def test_save_load_identity(self, tmp_path):
        dataset = generate_dataset("meggie", seed=2, **TINY)
        meta = save_dataset(dataset, tmp_path / "art")
        assert meta["n_jobs"] == dataset.num_jobs
        reloaded = load_dataset(tmp_path / "art")
        assert_datasets_identical(dataset, reloaded)


class TestRunPipeline:
    def test_empty_shards_rejected(self, tmp_path):
        with pytest.raises(PipelineError):
            run_pipeline([], cache_dir=tmp_path)

    def test_bad_workers_rejected(self, tmp_path):
        with pytest.raises(PipelineError):
            run_pipeline(SHARDS, cache_dir=tmp_path, workers=0)

    def test_warm_cache_at_least_5x_faster(self, tmp_path):
        cold = run_pipeline(SHARDS[:2], cache_dir=tmp_path)
        warm = run_pipeline(SHARDS[:2], cache_dir=tmp_path)
        assert not cold.fully_cached
        assert warm.fully_cached
        assert warm.stages_cached == warm.stages_total
        # The acceptance bar from the issue; in practice it is >100x.
        assert warm.total_seconds * 5 <= cold.total_seconds

    def test_manifest_round_trip(self, tmp_path):
        manifest = run_pipeline(
            SHARDS[:1], cache_dir=tmp_path / "c", manifest_path=tmp_path / "m.json"
        )
        assert (tmp_path / "c" / MANIFEST_NAME).is_file()
        loaded = RunManifest.load(tmp_path / "m.json")
        assert loaded.to_dict() == manifest.to_dict()
        assert loaded.n_jobs == manifest.n_jobs > 0
        report = loaded.shards[0]
        assert [t.stage for t in report.stages] == [
            "workload", "schedule", "telemetry", "dataset",
        ]
        assert all(t.n_items > 0 for t in report.stages)

    def test_shards_deduplicated_and_dicts_accepted(self, tmp_path):
        manifest = run_pipeline(
            [SHARDS[0], SHARDS[0].to_dict()], cache_dir=tmp_path
        )
        assert len(manifest.shards) == 1


class TestParallelDeterminism:
    def test_serial_and_parallel_runs_are_byte_identical(self, tmp_path):
        serial_root, parallel_root = tmp_path / "serial", tmp_path / "parallel"
        serial = run_pipeline(SHARDS, cache_dir=serial_root, workers=1)
        parallel = run_pipeline(SHARDS, cache_dir=parallel_root, workers=4)
        assert parallel.workers == 4
        assert [s.config for s in serial.shards] == [s.config for s in parallel.shards]

        for shard in SHARDS:
            key = stage_key(shard, "dataset")
            a = ArtifactCache(serial_root).entry_dir("dataset", key)
            b = ArtifactCache(parallel_root).entry_dir("dataset", key)
            # Same artifact files, byte for byte (meta.json carries a
            # wall-clock timestamp, so it is excluded by design).
            names = sorted(p.name for p in a.iterdir() if p.name != "meta.json")
            assert names == sorted(p.name for p in b.iterdir() if p.name != "meta.json")
            assert "jobs.npz" in names and "dataset.json" in names
            for name in names:
                assert (a / name).read_bytes() == (b / name).read_bytes(), (
                    f"{shard.label}/{name} differs between serial and parallel runs"
                )

        # CSV exports of the reloaded datasets match byte for byte too.
        for shard in SHARDS[:1]:
            key = stage_key(shard, "dataset")
            for i, root in enumerate((serial_root, parallel_root)):
                ds = load_dataset(ArtifactCache(root).entry_dir("dataset", key))
                save_jobs_csv(ds.jobs, tmp_path / f"jobs{i}.csv")
            assert (tmp_path / "jobs0.csv").read_bytes() == (
                tmp_path / "jobs1.csv"
            ).read_bytes()
