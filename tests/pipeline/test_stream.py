"""Streaming pipeline: chunk determinism, byte-identity, resume, cleanup.

The streaming builder's contract is that it commits the *same dataset
cache entry, byte for byte*, as the monolithic writer — for any seed and
any chunk size — while holding only one chunk plus the scheduler's live
frontier in memory. These tests enforce the contract end to end
(hypothesis over seeds × chunk sizes), plus the pieces that make it
hold: chunked scheduling with checkpoint/restore, chunked telemetry
stream continuation, resume-after-interrupt shard reuse, and orphan
cleanup.
"""

import hashlib
import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.pipeline.stream as stream_mod
from repro.errors import PipelineError, SchedulerError
from repro.obs.metrics import peak_rss_bytes
from repro.pipeline import (
    ArtifactCache,
    ChunkPlan,
    ShardConfig,
    chunk_key,
    run_pipeline,
    run_shard,
    stage_key,
    stream_shard,
)
from repro.scheduler.simulator import SchedulerConfig, Simulator
from repro.telemetry.dataset import build_inputs, sample_telemetry
from repro.telemetry.stream import TelemetryStream
from repro.workload.generator import WorkloadGenerator

TINY = dict(num_nodes=24, num_users=8, horizon_s=5 * 86400, max_traces=16)
# build_inputs() takes the cluster-shape knobs but not max_traces.
TINY_BUILD = {k: v for k, v in TINY.items() if k != "max_traces"}


def _shard(seed: int) -> ShardConfig:
    return ShardConfig("emmy", seed=seed, **TINY)


def _artifact_digest(cache: ArtifactCache, shard: ShardConfig) -> str:
    """SHA-256 over the dataset entry's artifact files (meta.json has
    timestamps and is excluded — it is bookkeeping, not the artifact)."""
    entry = cache.entry_dir("dataset", stage_key(shard, "dataset"))
    h = hashlib.sha256()
    for path in sorted(entry.iterdir()):
        if path.name == "meta.json":
            continue
        h.update(path.name.encode())
        h.update(path.read_bytes())
    return h.hexdigest()


def _monolithic_digest(tmp_path, seed: int) -> str:
    cache = ArtifactCache(tmp_path / f"mono{seed}")
    shard = _shard(seed)
    run_shard(shard, cache, want_dataset=False)
    return _artifact_digest(cache, shard)


class TestChunkPlan:
    def test_bounds_partition_every_index_once(self):
        plan = ChunkPlan(n_jobs=10, chunk_jobs=3)
        assert plan.n_chunks == 4
        covered = [j for i in range(plan.n_chunks)
                   for j in range(*plan.bounds(i))]
        assert covered == list(range(10))

    def test_exact_multiple(self):
        plan = ChunkPlan(n_jobs=9, chunk_jobs=3)
        assert plan.n_chunks == 3
        assert plan.bounds(2) == (6, 9)

    def test_single_chunk_when_oversized(self):
        plan = ChunkPlan(n_jobs=5, chunk_jobs=100)
        assert plan.n_chunks == 1
        assert plan.bounds(0) == (0, 5)

    def test_iteration_yields_index_and_bounds(self):
        assert list(ChunkPlan(n_jobs=4, chunk_jobs=2)) == [(0, 0, 2), (1, 2, 4)]

    def test_invalid_args_raise(self):
        with pytest.raises(PipelineError):
            ChunkPlan(n_jobs=0, chunk_jobs=1)
        with pytest.raises(PipelineError):
            ChunkPlan(n_jobs=5, chunk_jobs=0)
        with pytest.raises(PipelineError):
            ChunkPlan(n_jobs=5, chunk_jobs=2).bounds(3)


class TestSimulatorStreaming:
    """feed/drain/snapshot/restore must replay the monolithic event order."""

    def _plan(self, seed=3):
        cluster, params = build_inputs("emmy", seed=seed, **TINY_BUILD)
        gen = WorkloadGenerator(params, cluster.num_nodes, seed=seed)
        return cluster, gen.generate_plan()

    def test_chunked_feed_equals_run(self):
        cluster, plan = self._plan()
        cfg = SchedulerConfig(num_nodes=cluster.num_nodes)
        mono = Simulator(cfg).run(plan.materialize())
        sim = Simulator(cfg)
        out = []
        for lo in range(0, plan.n_jobs, 37):
            sim.feed(plan.materialize(lo, min(lo + 37, plan.n_jobs)))
            out.extend(sim.take_results())
        sim.drain()
        out.extend(sim.take_results())
        assert len(out) == len(mono)
        for a, b in zip(out, mono):
            assert a.spec == b.spec
            assert a.start_s == b.start_s
            assert np.array_equal(a.node_ids, b.node_ids)

    def test_snapshot_restore_roundtrip_is_bit_identical(self):
        cluster, plan = self._plan(seed=5)
        cfg = SchedulerConfig(num_nodes=cluster.num_nodes)
        mono = Simulator(cfg).run(plan.materialize())
        sim = Simulator(cfg)
        out = []
        for lo in range(0, plan.n_jobs, 53):
            sim.feed(plan.materialize(lo, min(lo + 53, plan.n_jobs)))
            out.extend(sim.take_results())
            # Kill the simulator, resurrect it from a pickled checkpoint.
            sim = Simulator.restore(pickle.loads(pickle.dumps(sim.snapshot())))
        sim.drain()
        out.extend(sim.take_results())
        assert [(j.spec.job_id, j.start_s) for j in out] == [
            (j.spec.job_id, j.start_s) for j in mono
        ]
        for a, b in zip(out, mono):
            assert np.array_equal(a.node_ids, b.node_ids)

    def test_feeding_the_past_raises(self):
        cluster, plan = self._plan()
        sim = Simulator(SchedulerConfig(num_nodes=cluster.num_nodes))
        jobs = plan.materialize()
        sim.feed(jobs[10:20])
        with pytest.raises(SchedulerError, match="before"):
            sim.feed(jobs[:10])


class TestTelemetryStream:
    def _scheduled(self, seed=5):
        cluster, params = build_inputs("emmy", seed=seed, **TINY_BUILD)
        gen = WorkloadGenerator(params, cluster.num_nodes, seed=seed)
        jobs = gen.generate()
        sched = Simulator(
            SchedulerConfig(num_nodes=cluster.num_nodes)
        ).run(jobs)
        return cluster, params, sched

    def test_chunked_sampling_equals_monolithic(self):
        cluster, params, sched = self._scheduled()
        mono = sample_telemetry(
            cluster, sched, params.horizon_s, seed=5, max_traces=16
        )
        ts = TelemetryStream(cluster, params.horizon_s, seed=5, max_traces=16)
        chunks = [ts.sample_chunk(sched[lo: lo + 41])
                  for lo in range(0, len(sched), 41)]
        assert np.array_equal(
            np.concatenate([c.pernode_power for c in chunks]), mono.pernode_power
        )
        assert np.array_equal(
            np.concatenate([c.power_sum for c in chunks]), mono.power_sum
        )
        merged = {}
        for c in chunks:
            merged.update(c.traces)
        assert list(merged) == list(mono.traces)
        for jid in merged:
            assert np.array_equal(merged[jid].matrix, mono.traces[jid].matrix)

    def test_state_restore_continues_the_stream(self):
        cluster, params, sched = self._scheduled()
        a = TelemetryStream(cluster, params.horizon_s, seed=5, max_traces=16)
        first = a.sample_chunk(sched[:100])
        state = pickle.loads(pickle.dumps(a.state()))
        rest_direct = a.sample_chunk(sched[100:])
        b = TelemetryStream(cluster, params.horizon_s, seed=5, max_traces=16)
        b.restore_state(state)
        rest_restored = b.sample_chunk(sched[100:])
        assert np.array_equal(rest_direct.power_sum, rest_restored.power_sum)
        assert list(rest_direct.traces) == list(rest_restored.traces)
        assert b.n_traces == len(first.traces) + len(rest_restored.traces)

    def test_empty_chunk_consumes_no_draws(self):
        cluster, params, sched = self._scheduled()
        a = TelemetryStream(cluster, params.horizon_s, seed=5, max_traces=16)
        b = TelemetryStream(cluster, params.horizon_s, seed=5, max_traces=16)
        empty = a.sample_chunk([])
        assert empty.num_jobs == 0
        assert np.array_equal(
            a.sample_chunk(sched).power_sum, b.sample_chunk(sched).power_sum
        )


class TestByteIdentity:
    """The acceptance criterion: same NPZ bytes for any seed/chunk size."""

    _mono_digests: dict = {}

    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 2), chunk_jobs=st.integers(23, 400))
    def test_streamed_equals_monolithic(self, tmp_path, seed, chunk_jobs):
        if seed not in self._mono_digests:
            self._mono_digests[seed] = _monolithic_digest(tmp_path, seed)
        shard = _shard(seed)
        cache = ArtifactCache(tmp_path / f"s{seed}c{chunk_jobs}")
        report = stream_shard(shard, cache, chunk_jobs=chunk_jobs)
        assert _artifact_digest(cache, shard) == self._mono_digests[seed]
        assert report.n_jobs > 0
        assert not (cache.root / "chunk").exists()  # spills cleaned up

    def test_monolithic_run_hits_streamed_entry(self, tmp_path):
        """Both modes share one cache key: stream first, run_shard hits."""
        shard = _shard(9)
        cache = ArtifactCache(tmp_path)
        stream_shard(shard, cache, chunk_jobs=100)
        report, dataset = run_shard(shard, cache, want_dataset=True)
        assert report.fully_cached
        assert dataset is not None and dataset.num_jobs == report.n_jobs

    def test_parallel_compaction_identical(self, tmp_path):
        shard = _shard(1)
        serial = ArtifactCache(tmp_path / "serial")
        parallel = ArtifactCache(tmp_path / "parallel")
        stream_shard(shard, serial, chunk_jobs=120)
        stream_shard(shard, parallel, chunk_jobs=120, compact_workers=3)
        assert _artifact_digest(serial, shard) == _artifact_digest(parallel, shard)


class TestResume:
    def test_interrupted_run_reuses_completed_shards(self, tmp_path, monkeypatch):
        shard = _shard(4)
        cache = ArtifactCache(tmp_path / "interrupted")
        # Kill the run right before compaction: all chunks are spilled.
        def boom(*args, **kwargs):
            raise RuntimeError("killed")
        monkeypatch.setattr(stream_mod, "_compact_shards", boom)
        with pytest.raises(RuntimeError, match="killed"):
            stream_shard(shard, cache, chunk_jobs=120)
        shards_left = list((cache.root / "chunk").iterdir())
        assert shards_left
        monkeypatch.undo()

        report = stream_shard(shard, cache, chunk_jobs=120)
        chunk_rows = [t for t in report.stages if t.stage == "chunk"]
        assert chunk_rows and all(t.cached for t in chunk_rows)
        ref = ArtifactCache(tmp_path / "ref")
        run_shard(shard, ref, want_dataset=False)
        assert _artifact_digest(cache, shard) == _artifact_digest(ref, shard)

    def test_mid_chunk_interrupt_resumes_from_checkpoint(self, tmp_path, monkeypatch):
        shard = _shard(6)
        cache = ArtifactCache(tmp_path / "midkill")
        real_store = ArtifactCache.store_tree
        calls = {"n": 0}

        def flaky_store(self, stage, key, build, meta):
            if stage == "chunk":
                calls["n"] += 1
                if calls["n"] == 3:
                    raise RuntimeError("killed mid-stream")
            return real_store(self, stage, key, build, meta)

        monkeypatch.setattr(ArtifactCache, "store_tree", flaky_store)
        with pytest.raises(RuntimeError, match="killed mid-stream"):
            stream_shard(shard, cache, chunk_jobs=30)
        monkeypatch.undo()
        done_before = len(list((cache.root / "chunk").iterdir()))
        assert done_before == 2

        report = stream_shard(shard, cache, chunk_jobs=30)
        cached = [t for t in report.stages if t.stage == "chunk" and t.cached]
        built = [t for t in report.stages if t.stage == "chunk" and not t.cached]
        assert len(cached) == 2 and built
        ref = ArtifactCache(tmp_path / "ref")
        run_shard(shard, ref, want_dataset=False)
        assert _artifact_digest(cache, shard) == _artifact_digest(ref, shard)


class TestOrphanCleanup:
    def test_kept_shards_become_orphans_once_dataset_commits(self, tmp_path):
        shard = _shard(2)
        cache = ArtifactCache(tmp_path)
        stream_shard(shard, cache, chunk_jobs=150, keep_shards=True)
        chunk_entries = cache.entries("chunk")
        assert chunk_entries
        removed = cache.remove_orphan_shards()
        assert removed == len(chunk_entries)
        assert not cache.entries("chunk")

    def test_resumable_shards_survive_orphan_cleanup(self, tmp_path, monkeypatch):
        shard = _shard(2)
        cache = ArtifactCache(tmp_path)
        monkeypatch.setattr(
            stream_mod, "_compact_shards",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("killed")),
        )
        with pytest.raises(RuntimeError):
            stream_shard(shard, cache, chunk_jobs=150)
        monkeypatch.undo()
        before = len(cache.entries("chunk"))
        assert before > 0
        # The aborted dataset commit leaks a tmp/ staging dir; cleanup may
        # count that, but every resumable chunk shard must survive.
        cache.remove_orphan_shards()
        assert len(cache.entries("chunk")) == before

    def test_stale_tmp_dirs_are_removed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        (cache.root / "tmp" / "deadbeef").mkdir(parents=True)
        assert cache.remove_orphan_shards() == 1
        assert not (cache.root / "tmp").exists()

    def test_chunk_keys_depend_on_geometry(self):
        shard = _shard(0)
        assert chunk_key(shard, 100, 0) != chunk_key(shard, 100, 1)
        assert chunk_key(shard, 100, 0) != chunk_key(shard, 200, 0)
        assert chunk_key(shard, 100, 0) != chunk_key(_shard(1), 100, 0)


class TestPeakRss:
    def test_helper_reports_positive(self):
        rss = peak_rss_bytes()
        assert rss > 10 * 1024 * 1024  # a Python+numpy process is >10 MB

    def test_manifest_and_stage_meta_record_peak_rss(self, tmp_path):
        shard = _shard(0)
        manifest = run_pipeline(
            [shard], cache_dir=tmp_path, stream=True, chunk_jobs=200
        )
        assert manifest.peak_rss_bytes > 0
        assert manifest.to_dict()["peak_rss_bytes"] == manifest.peak_rss_bytes
        cache = ArtifactCache(tmp_path)
        meta = cache.load_meta("dataset", stage_key(shard, "dataset"))
        assert meta["peak_rss_bytes"] > 0
        assert meta["streamed"] is True

    def test_monolithic_stage_meta_records_peak_rss(self, tmp_path):
        shard = _shard(3)
        cache = ArtifactCache(tmp_path)
        run_shard(shard, cache, want_dataset=False)
        for stage in ("workload", "schedule", "telemetry", "dataset"):
            assert cache.load_meta(stage, stage_key(shard, stage))["peak_rss_bytes"] > 0
