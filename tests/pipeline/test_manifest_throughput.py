"""Throughput fields in the run manifest and stage metadata."""

import json

from repro.pipeline import RunManifest, ShardConfig, StageTiming, run_pipeline

TINY = dict(num_nodes=16, num_users=8, horizon_s=2 * 86400, max_traces=5)


class TestManifestThroughput:
    def test_cold_run_records_throughput(self, tmp_path):
        manifest = run_pipeline(
            [ShardConfig("emmy", seed=1, **TINY)], cache_dir=tmp_path
        )
        (shard,) = manifest.shards
        assert shard.n_jobs > 0
        assert shard.jobs_per_second > 0
        by_stage = {t.stage: t for t in shard.stages}
        assert set(by_stage) == {"workload", "schedule", "telemetry", "dataset"}
        for t in by_stage.values():
            assert t.items_per_second > 0
        # Trace counts only on the stages that produce traces.
        assert by_stage["telemetry"].n_traces == shard.n_traces
        assert by_stage["dataset"].n_traces == shard.n_traces
        assert by_stage["workload"].n_traces == 0
        assert by_stage["workload"].traces_per_second == 0.0
        if shard.n_traces:
            assert by_stage["telemetry"].traces_per_second > 0

    def test_manifest_json_round_trip(self, tmp_path):
        manifest = run_pipeline(
            [ShardConfig("emmy", seed=1, **TINY)],
            cache_dir=tmp_path, manifest_path=tmp_path / "m.json",
        )
        data = json.loads((tmp_path / "m.json").read_text())
        stage = data["shards"][0]["stages"][0]
        assert "items_per_second" in stage
        assert "traces_per_second" in stage
        assert "jobs_per_second" in data["shards"][0]
        loaded = RunManifest.load(tmp_path / "m.json")
        assert loaded.shards[0].n_traces == manifest.shards[0].n_traces
        assert [t.n_traces for t in loaded.shards[0].stages] == [
            t.n_traces for t in manifest.shards[0].stages
        ]

    def test_old_manifest_without_throughput_fields_loads(self):
        """Manifests written before the throughput fields stay readable."""
        timing = StageTiming.from_dict(
            {"stage": "workload", "key": "k", "seconds": 1.0,
             "cached": False, "n_items": 10}
        )
        assert timing.n_traces == 0
        assert timing.items_per_second == 10.0

    def test_stage_meta_records_build_seconds(self, tmp_path):
        from repro.pipeline import ArtifactCache

        run_pipeline([ShardConfig("emmy", seed=1, **TINY)], cache_dir=tmp_path)
        cache = ArtifactCache(tmp_path)
        for entry in cache.entries():
            assert entry.meta.get("seconds", 0) >= 0
            assert "seconds" in entry.meta
