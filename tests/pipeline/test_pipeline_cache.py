"""Cache correctness: keys, invalidation selectivity, targeted cleaning."""

import numpy as np
import pytest

from repro.errors import CacheError, PipelineError
from repro.pipeline import (
    STAGES,
    ArtifactCache,
    ShardConfig,
    canonical_json,
    content_key,
    stage_key,
)

TINY = dict(num_nodes=16, num_users=8, horizon_s=2 * 86400, max_traces=5)


def keys_for(shard: ShardConfig) -> dict[str, str]:
    return {stage: stage_key(shard, stage) for stage in STAGES}


class TestContentKey:
    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == canonical_json({"a": [2, 3], "b": 1})

    def test_canonical_json_handles_numpy_scalars(self):
        assert canonical_json({"x": np.int64(5)}) == canonical_json({"x": 5})

    def test_canonical_json_rejects_unserializable(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_content_key_is_stable(self):
        assert content_key({"a": 1}) == content_key({"a": 1})
        assert content_key({"a": 1}) != content_key({"a": 2})
        assert len(content_key({"a": 1})) == 64


class TestShardConfig:
    def test_overrides_normalized(self):
        a = ShardConfig("emmy", params_overrides={"b": 1, "a": 2})
        b = ShardConfig("emmy", params_overrides=(("a", 2), ("b", 1)))
        assert a == b
        assert a.overrides_dict == {"a": 2, "b": 1}

    def test_round_trip(self):
        shard = ShardConfig("meggie", seed=3, params_overrides={"spatial_scale": 0.0}, **TINY)
        assert ShardConfig.from_dict(shard.to_dict()) == shard

    def test_empty_system_rejected(self):
        with pytest.raises(PipelineError):
            ShardConfig("")


class TestKeySelectivity:
    """Which config changes invalidate which stages (STAGE_FIELDS contract)."""

    def test_same_config_same_keys(self):
        assert keys_for(ShardConfig("emmy", seed=1, **TINY)) == keys_for(
            ShardConfig("emmy", seed=1, **TINY)
        )

    def test_seed_invalidates_everything(self):
        a, b = keys_for(ShardConfig("emmy", seed=1, **TINY)), keys_for(
            ShardConfig("emmy", seed=2, **TINY)
        )
        assert all(a[s] != b[s] for s in STAGES)

    def test_max_traces_keeps_workload_and_schedule(self):
        base = dict(TINY)
        a = keys_for(ShardConfig("emmy", seed=1, **base))
        base["max_traces"] = 9
        b = keys_for(ShardConfig("emmy", seed=1, **base))
        assert a["workload"] == b["workload"]
        assert a["schedule"] == b["schedule"]
        assert a["telemetry"] != b["telemetry"]
        assert a["dataset"] != b["dataset"]

    def test_backfill_depth_keeps_workload_only(self):
        a = keys_for(ShardConfig("emmy", seed=1, **TINY))
        b = keys_for(ShardConfig("emmy", seed=1, backfill_depth=7, **TINY))
        assert a["workload"] == b["workload"]
        assert a["schedule"] != b["schedule"]
        assert a["telemetry"] != b["telemetry"]
        assert a["dataset"] != b["dataset"]

    def test_variability_sigma_keeps_schedule(self):
        a = keys_for(ShardConfig("emmy", seed=1, **TINY))
        b = keys_for(ShardConfig("emmy", seed=1, variability_sigma=0.0, **TINY))
        assert a["schedule"] == b["schedule"]
        assert a["telemetry"] != b["telemetry"]

    def test_unknown_stage_rejected(self):
        with pytest.raises(PipelineError):
            stage_key(ShardConfig("emmy"), "render")


class TestArtifactCache:
    def test_pickle_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = content_key({"k": 1})
        assert not cache.has("workload", key)
        cache.store_pickle("workload", key, [1, 2, 3], {"n_items": 3})
        assert cache.has("workload", key)
        assert cache.load_pickle("workload", key) == [1, 2, 3]
        assert cache.load_meta("workload", key)["n_items"] == 3

    def test_missing_entry_raises(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(CacheError):
            cache.load_pickle("workload", "0" * 64)
        with pytest.raises(CacheError):
            cache.load_meta("workload", "0" * 64)

    def test_store_tree_merges_build_meta(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = content_key({"k": 2})

        def build(tmp):
            (tmp / "data.txt").write_text("hello")
            return {"n_files": 1}

        cache.store_tree("dataset", key, build, {"label": "x"})
        assert (cache.entry_dir("dataset", key) / "data.txt").read_text() == "hello"
        meta = cache.load_meta("dataset", key)
        assert meta["n_files"] == 1 and meta["label"] == "x"

    def test_entries_sorted_and_filtered(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(3):
            cache.store_pickle("workload", content_key({"i": i}), i, {})
        cache.store_pickle("schedule", content_key({"i": 0}), 0, {})
        assert len(cache.entries()) == 4
        assert len(cache.entries("workload")) == 3
        keys = [e.key for e in cache.entries("workload")]
        assert keys == sorted(keys)

    def test_remove_filters_by_stage_system_seed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for system in ("emmy", "meggie"):
            for seed in (1, 2):
                meta = {"config": {"system": system, "seed": seed}}
                cache.store_pickle("workload", content_key({"s": system, "n": seed}), 0, meta)
                cache.store_pickle("schedule", content_key({"s": system, "n": seed}), 0, meta)
        assert cache.remove(stage="workload", system="emmy") == 2
        assert len(cache.entries("workload")) == 2  # meggie survives
        assert len(cache.entries("schedule")) == 4  # other stage untouched
        assert cache.remove(seed=1) == 3
        assert cache.remove() == 3  # no filters: everything left
        assert cache.entries() == []

    def test_size_bytes_counts_committed_files(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.size_bytes() == 0
        cache.store_pickle("workload", content_key({"z": 1}), list(range(100)), {})
        assert cache.size_bytes() > 0
