"""ServedSystem: lifecycle, HTTP client, fault arming, bind retry.

The harness is the one copy of the start/drive/observe/stop dance every
suite used to hand-roll, so its own edges get pinned here: shared
services must survive ``stop()``, explicit ports that lose a bind race
must retry and fall back (the old flake), and arming must refuse the
forked mode it cannot reach.
"""

from __future__ import annotations

import socket

import pytest

from repro.errors import IncidentError
from repro.faults.injector import FaultInjector, active_injector
from repro.faults.plan import FaultPlan, FaultRule
from tests.helpers.served import ServedSystem, served


def test_lifecycle_and_json_client(tiny_service):
    system = ServedSystem(service=tiny_service)
    assert system.running is False
    with pytest.raises(IncidentError, match="not started"):
        system.port
    system.start()
    try:
        assert system.running and system.port > 0
        assert system.base_url == f"http://127.0.0.1:{system.port}"
        status, headers, health = system.get("/healthz")
        assert status == 200 and health["status"] == "ok"
        assert "application/json" in headers.get("Content-Type", "")
        # raw_response skips the JSON decode for byte-shape consumers.
        status, _, raw = system.get("/healthz", raw_response=True)
        assert status == 200 and isinstance(raw, bytes)
    finally:
        system.stop()
    assert system.running is False
    system.stop()  # idempotent
    system.close()  # alias


def test_stop_leaves_a_shared_service_usable(tiny_service, tiny_spec):
    # Two consecutive harnesses front the same caller-owned service:
    # the first stop() must tear down only the HTTP server.
    for _ in range(2):
        with ServedSystem(service=tiny_service) as system:
            status, _, body = system.post(
                "/predict",
                {"model": "BDT", "jobs": [
                    {"user": "u", "nodes": 1, "req_walltime_s": 60},
                ]},
            )
            # 400 (unknown user) still proves service + server answer.
            assert status in (200, 400)
    assert tiny_service.stats()["scenario"] == tiny_spec.to_dict()


def test_served_contextmanager_wrapper(tiny_service):
    with served(service=tiny_service) as system:
        assert system.running
        status, _, _ = system.get("/healthz")
        assert status == 200
    assert system.running is False


def test_explicit_port_collision_falls_back_to_ephemeral(tiny_service):
    # Occupy a port, then ask the harness for exactly that port: the
    # retry loop must back off and fall back instead of flaking.
    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    taken = blocker.getsockname()[1]
    try:
        with ServedSystem(
            service=tiny_service, port=taken, bind_retries=2
        ) as system:
            assert system.port != taken
            status, _, _ = system.get("/healthz")
            assert status == 200
    finally:
        blocker.close()


def test_strict_port_collision_fails_loudly(tiny_service):
    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    taken = blocker.getsockname()[1]
    try:
        system = ServedSystem(
            service=tiny_service, port=taken, bind_retries=2, strict_port=True
        )
        with pytest.raises(IncidentError, match="could not bind"):
            system.start()
    finally:
        blocker.close()


def test_constructor_validation(tiny_service):
    with pytest.raises(IncidentError, match="workers"):
        ServedSystem(workers=0)
    with pytest.raises(IncidentError, match="cannot be forked"):
        ServedSystem(service=tiny_service, workers=2)


def test_armed_wraps_plans_and_restores_state(tiny_service):
    plan = FaultPlan(seed=9, rules=(FaultRule("cache.read", rate=1.0),))
    with ServedSystem(service=tiny_service) as system:
        assert active_injector() is None
        with system.armed(plan) as injector:
            assert active_injector() is injector
            assert injector.plan == plan
        assert active_injector() is None
        # A prebuilt injector passes through untouched.
        prebuilt = FaultInjector(plan)
        with system.armed(prebuilt) as injector:
            assert injector is prebuilt


def test_armed_refuses_forked_workers():
    system = ServedSystem("emmy", workers=2)  # never started: cheap
    with pytest.raises(IncidentError, match="forked"):
        with system.armed(FaultPlan(seed=1)):
            pass


def test_snapshot_delta_brackets_own_traffic(tiny_service):
    with ServedSystem(service=tiny_service) as system:
        before = system.snapshot()
        for _ in range(3):
            status, _, _ = system.get("/healthz")
            assert status == 200
        delta = system.delta_since(before)
        moved = delta.get("repro_http_requests_total", {})
        assert sum(v for k, v in moved.items() if "/healthz" in k) >= 3
