"""Detectors and grader on synthetic bundles: rules, scores, gates.

No servers here — bundles are constructed in memory with exactly the
evidence under test, so each detector rule's trigger condition, the
grader's precision/recall/time-to-detect conventions, and the
scorecard's headline gates are pinned one edge at a time.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import IncidentError
from repro.incidents.detectors import (
    BASELINE_DETECTORS,
    DetectorAnswer,
    RuleBasedDetector,
    get_detector,
)
from repro.incidents.grader import Scorecard, grade_answer
from repro.incidents.orchestrator import IncidentBundle

RULES = BASELINE_DETECTORS["rules"]


def mk_bundle(
    name="control",
    fired=None,
    events=(),
    delta=None,
    windows=(),
    ref_latency_s=0.004,
    kind=None,
):
    """A synthetic in-memory bundle with exactly the given evidence."""
    fired = dict(fired or {})
    if kind is None:
        kind = "control" if not fired else (
            "single" if len(fired) == 1 else "compound"
        )
    manifest = {
        "format": "repro-incident-bundle/1",
        "scenario": {"name": name, "kind": kind},
        "ref_latency_s": ref_latency_s,
        "ground_truth": {
            "armed_points": sorted(fired),
            "fired_points": fired,
            "schedule_consistent": True,
        },
        "digest": "0" * 64,
    }
    return IncidentBundle(
        path=Path("synthetic"),
        manifest=manifest,
        events=list(events),
        windows=list(windows),
        metrics={"delta": delta or {}},
    )


def _truth(point, first_t=0.1):
    return {point: {"fires": 3, "first_call": 0, "first_t": first_t}}


# -- detector rules, one signature at a time -----------------------------


def test_clean_bundle_detects_nothing():
    answer = RULES.analyze(mk_bundle())
    assert answer.detected is False and answer.points == {}


def test_batcher_crash_rule_reads_the_crash_counter():
    bundle = mk_bundle(
        name="batcher-crash",
        delta={"repro_batcher_crashes_total": {("BDT",): 2.0}},
        windows=[
            {"t0": 0.0, "t1": 0.25, "series": {}},
            {"t0": 0.25, "t1": 0.5,
             "series": {"repro_batcher_crashes_total": {("BDT",): 2.0}}},
        ],
    )
    answer = RULES.analyze(bundle)
    # Onset: the start of the first window where the counter moved.
    assert answer.points == {"batcher.crash": 0.25}


def test_registry_rule_reads_degraded_outcomes():
    bundle = mk_bundle(
        name="registry-degraded",
        delta={"repro_predict_outcomes_total": {("degraded",): 4.0}},
        events=[{"t": 0.8, "source": "client-0", "kind": "request",
                 "status": 200, "category": "degraded", "malformed": False,
                 "latency_s": 0.004}],
    )
    # No window carried the movement: falls back to the first degraded
    # request event's timestamp.
    assert RULES.analyze(bundle).points == {"registry.train": 0.8}


def test_malformed_rule_reads_400_responses():
    bundle = mk_bundle(
        name="http-malformed",
        delta={"repro_http_responses_total": {("/predict", "400"): 3.0}},
    )
    assert RULES.analyze(bundle).points == {"http.malformed": 0.0}


def test_cache_rules_distinguish_read_write_and_corruption():
    read_err = {"t": 0.3, "source": "ops", "kind": "read_error",
                "error_type": "CacheError", "message": "injected"}
    build_err = {"t": 0.5, "source": "ops", "kind": "build_error",
                 "error_type": "CacheError", "message": "injected"}
    corrupt = {"t": 0.7, "source": "ops", "kind": "read_error",
               "error_type": "UnpicklingError", "message": "injected"}
    # A failed build with no read-side errors implicates the write path.
    assert RULES.analyze(
        mk_bundle(name="cache-write", events=[build_err])
    ).points == {"cache.write": 0.5}
    # Read-side CacheErrors pin the blame on cache.read — even when a
    # build also failed, because pure reads never touch the write path.
    answer = RULES.analyze(
        mk_bundle(name="cache-read", events=[read_err, build_err])
    )
    assert "cache.read" in answer.points
    assert "cache.write" not in answer.points
    # UnpicklingError is corruption, not an IO failure.
    assert RULES.analyze(
        mk_bundle(name="cache-corrupt", events=[corrupt])
    ).points == {"cache.corrupt": 0.7}


def test_telemetry_rule_needs_gap_filled_rebuilds():
    clean = {"t": 0.2, "source": "ops", "kind": "build_ok", "gaps": 0}
    gappy = {"t": 0.6, "source": "ops", "kind": "build_ok", "gaps": 3}
    assert RULES.analyze(
        mk_bundle(name="telemetry-drop", events=[clean])
    ).points == {}
    assert RULES.analyze(
        mk_bundle(name="telemetry-drop", events=[clean, gappy])
    ).points == {"telemetry.drop": 0.6}


def _request(t, latency_s, category="ok"):
    return {"t": t, "source": "client-0", "kind": "request", "status": 200,
            "category": category, "malformed": False, "latency_s": latency_s}


def test_latency_rule_needs_floor_and_ratio():
    # Above ratio x ref but under the absolute floor: scheduler jitter
    # on a fast machine, not an incident.
    fast = mk_bundle(name="x", ref_latency_s=0.001,
                     events=[_request(0.1, 0.02), _request(0.2, 0.02)])
    assert "batcher.latency" not in RULES.analyze(fast).points
    # Above both: fires, onset at the first over-threshold request.
    slow = mk_bundle(name="latency-degradation", ref_latency_s=0.004,
                     events=[_request(0.1, 0.01), _request(0.2, 0.09),
                             _request(0.3, 0.09)])
    assert RULES.analyze(slow).points.get("batcher.latency") == 0.2


def test_conservative_variant_needs_more_evidence():
    conservative = BASELINE_DETECTORS["conservative"]
    one = mk_bundle(name="cache-corrupt", events=[
        {"t": 0.1, "kind": "read_error", "error_type": "UnpicklingError"},
    ])
    two = mk_bundle(name="cache-corrupt", events=one.events + [
        {"t": 0.4, "kind": "read_error", "error_type": "UnpicklingError"},
    ])
    assert conservative.analyze(one).detected is False
    assert conservative.analyze(two).points == {"cache.corrupt": 0.1}
    with pytest.raises(IncidentError, match="min_evidence"):
        RuleBasedDetector(min_evidence=0)
    with pytest.raises(IncidentError, match="unknown detector"):
        get_detector("oracle")


def test_detector_answer_round_trip():
    answer = DetectorAnswer("s", "rules", True, {"cache.read": 0.5,
                                                 "cache.write": None})
    assert DetectorAnswer.from_dict(answer.to_dict()) == answer
    with pytest.raises(IncidentError, match="unknown detector-answer"):
        DetectorAnswer.from_dict({"scenario": "s", "detected": True,
                                  "confidence": 0.9})


# -- grading conventions -------------------------------------------------


def test_perfect_answer_on_a_faulted_bundle():
    bundle = mk_bundle(name="cache-corrupt", fired=_truth("cache.corrupt"))
    answer = DetectorAnswer("cache-corrupt", "rules", True,
                            {"cache.corrupt": 0.4})
    grade = grade_answer(bundle, answer)
    assert (grade.precision, grade.recall, grade.f1) == (1.0, 1.0, 1.0)
    assert grade.detection_correct and not grade.false_alarm
    assert grade.ttd_s == {"cache.corrupt": pytest.approx(0.3)}
    assert grade.onset_hits == grade.onset_scored == 1
    assert grade.mean_ttd_s == pytest.approx(0.3)


def test_empty_answer_on_a_faulted_bundle_scores_zero():
    bundle = mk_bundle(name="cache-corrupt", fired=_truth("cache.corrupt"))
    answer = DetectorAnswer("cache-corrupt", "rules", False, {})
    grade = grade_answer(bundle, answer)
    assert grade.precision == 0.0 and grade.recall == 0.0
    assert grade.detection_correct is False and grade.false_alarm is False


def test_clean_answer_on_control_is_perfect():
    grade = grade_answer(mk_bundle(), DetectorAnswer("control", "rules",
                                                     False, {}))
    assert (grade.precision, grade.recall, grade.f1) == (1.0, 1.0, 1.0)
    assert grade.detection_correct and not grade.false_alarm


def test_false_alarm_on_control():
    answer = DetectorAnswer("control", "rules", True, {"cache.read": 0.1})
    grade = grade_answer(mk_bundle(), answer)
    assert grade.false_alarm is True and grade.detection_correct is False
    assert grade.precision == 0.0


def test_onset_outside_tolerance_is_scored_but_not_a_hit():
    bundle = mk_bundle(name="s", fired=_truth("cache.read", first_t=0.1))
    late = DetectorAnswer("s", "rules", True, {"cache.read": 9.0})
    grade = grade_answer(bundle, late, onset_tolerance_s=2.0)
    assert grade.onset_scored == 1 and grade.onset_hits == 0
    # A point localized without a timing estimate is simply unscored.
    untimed = DetectorAnswer("s", "rules", True, {"cache.read": None})
    grade = grade_answer(bundle, untimed)
    assert grade.onset_scored == 0 and grade.ttd_s == {}


def test_grader_refuses_mismatched_scenarios():
    with pytest.raises(IncidentError, match="answer is for"):
        grade_answer(mk_bundle(name="control"),
                     DetectorAnswer("cache-read", "rules", False, {}))


# -- scorecard gates -----------------------------------------------------


def _grade(name, fired, points, detector="rules"):
    answer = DetectorAnswer(name, detector, bool(points), dict(points))
    return grade_answer(mk_bundle(name=name, fired=fired), answer)


def test_scorecard_passes_when_gates_are_met():
    card = Scorecard(detector="rules")
    card.add(_grade("control", {}, {}))
    card.add(_grade("cache-corrupt", _truth("cache.corrupt"),
                    {"cache.corrupt": 0.2}))
    assert card.passed and card.problems() == []
    assert card.single_point_recall == 1.0
    assert card.control_false_positives == 0
    data = card.to_dict()
    assert data["passed"] is True and data["n_scenarios"] == 2
    assert "PASS" in card.summary()


def test_scorecard_gates_fail_loudly():
    card = Scorecard(detector="rules")
    card.add(_grade("control", {}, {"cache.read": 0.1}))  # false alarm
    card.add(_grade("cache-corrupt", _truth("cache.corrupt"), {}))  # miss
    problems = card.problems()
    assert any("single-point" in p for p in problems)
    assert any("false positive" in p for p in problems)
    assert any("detection verdict" in p for p in problems)
    assert card.passed is False and "FAIL" in card.summary()


def test_scorecard_rejects_foreign_grades_and_empty_runs():
    card = Scorecard(detector="rules")
    assert card.problems() == ["no scenarios were graded"]
    with pytest.raises(IncidentError, match="scorecard"):
        card.add(_grade("control", {}, {}, detector="conservative"))
