"""run_scenario end-to-end: live system, real bundles, graded answers.

Tier-1 keeps this to the two scenarios the CI smoke also runs — the
fault-free control and one single-point fault — so the full loop
(serve, arm, observe, bundle, detect, grade) is exercised on every
test run without dragging the whole catalog in. The catalog sweep is
marked ``slow`` (``pytest -m slow``); ``tools/incidents_bench.py``
covers it in full.
"""

from __future__ import annotations

import pytest

from repro.incidents.detectors import get_detector
from repro.incidents.grader import Scorecard, grade_answer
from repro.incidents.orchestrator import (
    ANSWER_KEY_METRICS,
    BUNDLE_MANIFEST,
    IncidentBundle,
    run_scenario,
)

BUNDLE_FILES = (
    BUNDLE_MANIFEST, "ledger.jsonl", "events.jsonl", "windows.jsonl",
    "metrics.json", "trace.jsonl",
)


@pytest.fixture(scope="module")
def control_bundle(tmp_path_factory, incidents_cache):
    out = tmp_path_factory.mktemp("bundle-control")
    return run_scenario("control", out, cache_dir=incidents_cache)


@pytest.fixture(scope="module")
def corrupt_bundle(tmp_path_factory, incidents_cache):
    out = tmp_path_factory.mktemp("bundle-corrupt")
    return run_scenario("cache-corrupt", out, cache_dir=incidents_cache)


def test_control_bundle_is_complete_and_clean(control_bundle):
    for name in BUNDLE_FILES:
        assert (control_bundle.path / name).is_file(), name
    truth = control_bundle.ground_truth
    assert truth["armed_points"] == []
    assert truth["fired_points"] == {}
    assert truth["schedule_consistent"] is True
    assert control_bundle.ledger == []
    # The load actually ran: client traffic and operator activity.
    kinds = {e["kind"] for e in control_bundle.events}
    assert "request" in kinds and "build_ok" in kinds
    assert control_bundle.manifest["ref_latency_s"] > 0
    assert len(control_bundle.windows) >= 1


def test_control_yields_no_false_positives(control_bundle):
    answer = get_detector("rules").analyze(control_bundle)
    assert answer.detected is False and answer.points == {}
    grade = grade_answer(control_bundle, answer)
    assert grade.precision == grade.recall == 1.0


def test_single_point_fault_is_fired_detected_and_graded(corrupt_bundle):
    truth = corrupt_bundle.ground_truth
    assert truth["armed_points"] == ["cache.corrupt"]
    fired = truth["fired_points"]["cache.corrupt"]
    # The forced first call makes the fired set deterministic.
    assert fired["first_call"] == 0 and fired["fires"] >= 1
    assert truth["schedule_consistent"] is True
    assert corrupt_bundle.ledger[0]["point"] == "cache.corrupt"
    answer = get_detector("rules").analyze(corrupt_bundle)
    grade = grade_answer(corrupt_bundle, answer)
    assert grade.recall == 1.0 and grade.detection_correct


def test_bundle_round_trips_through_disk(corrupt_bundle):
    reloaded = IncidentBundle.load(corrupt_bundle.path)
    assert reloaded.manifest == corrupt_bundle.manifest
    assert reloaded.ledger == corrupt_bundle.ledger
    assert reloaded.events == corrupt_bundle.events
    assert len(reloaded.windows) == len(corrupt_bundle.windows)
    assert reloaded.metric_delta() == corrupt_bundle.metric_delta()
    # And the answer key is present for the grader's audit but separable
    # from what detectors may read.
    delta = reloaded.metric_delta()
    assert any(delta.get(m) for m in ANSWER_KEY_METRICS)


def test_loading_a_non_bundle_fails_loudly(tmp_path):
    from repro.errors import IncidentError

    with pytest.raises(IncidentError, match="not an incident bundle"):
        IncidentBundle.load(tmp_path)


@pytest.mark.slow
def test_catalog_sweep_passes_the_gates(tmp_path_factory, incidents_cache):
    """A broader slice of the catalog, graded against the gates."""
    names = ("delayed-cache-corrupt", "batcher-crash", "registry-degraded",
             "latency-degradation", "compound-storm")
    out = tmp_path_factory.mktemp("bundle-sweep")
    detector = get_detector("rules")
    card = Scorecard(detector=detector.name)
    for name in names:
        bundle = run_scenario(name, out, cache_dir=incidents_cache)
        card.add(grade_answer(bundle, detector.analyze(bundle)))
    assert card.passed, card.summary()
    assert card.mean_recall == 1.0
