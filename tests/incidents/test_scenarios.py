"""The scenario registry: catalog shape, derived metadata, round-trips.

These tests pin the *contract* of the shipped catalog — the benchmark's
gates (≥8 scenarios, a fault-free control, single and compound kinds,
latency-only degradation) and the determinism convention every armed
rule must follow (a forced call inside its window, so the fired-point
set is a pure function of the scenario).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import IncidentError
from repro.faults.plan import INJECTION_POINTS, FaultPlan
from repro.incidents.scenarios import (
    SCENARIOS,
    IncidentScenario,
    LoadProfile,
    get_scenario,
    scenario_names,
)


def test_catalog_meets_the_benchmark_floor():
    assert len(SCENARIOS) >= 8
    kinds = {s.kind for s in SCENARIOS.values()}
    assert kinds == {"control", "single", "compound"}
    # Exactly one fault-free control, and it arms nothing.
    controls = [s for s in SCENARIOS.values() if s.kind == "control"]
    assert [s.name for s in controls] == ["control"]
    assert controls[0].plan.rules == ()
    # A latency-only incident (no error path at all) is in the mix.
    latency = get_scenario("latency-degradation")
    assert latency.fault_points == ("batcher.latency",)
    assert latency.plan.rules[0].duration_s > 0


def test_every_armed_point_is_a_known_injection_point():
    for scenario in SCENARIOS.values():
        for point in scenario.fault_points:
            assert point in INJECTION_POINTS, (scenario.name, point)


def test_catalog_names_and_seeds_are_unique():
    names = [s.name for s in SCENARIOS.values()]
    assert names == list(SCENARIOS)  # registry keyed by name
    seeds = [s.plan.seed for s in SCENARIOS.values()]
    assert len(set(seeds)) == len(seeds), "scenario seeds must not collide"


def test_every_armed_rule_forces_a_call_inside_its_window():
    """The digest-determinism convention: each rule fires its window's
    first call unconditionally, so `which points fired` never depends
    on rates or thread interleaving."""
    for scenario in SCENARIOS.values():
        for rule in scenario.plan.rules:
            assert rule.force_calls, (scenario.name, rule.point)
            first = rule.force_calls[0]
            assert first == rule.start, (scenario.name, rule.point)
            # And the plan agrees: that index is on the schedule.
            schedule = scenario.plan.schedule(rule.point, first + 1)
            assert first in schedule


def test_kind_is_derived_from_rule_count():
    assert get_scenario("control").kind == "control"
    assert get_scenario("cache-corrupt").kind == "single"
    assert get_scenario("compound-storm").kind == "compound"
    singles = [s for s in SCENARIOS.values() if s.kind == "single"]
    assert len(singles) >= 6  # one per failure family, at least


def test_scenarios_round_trip_through_json():
    for scenario in SCENARIOS.values():
        data = json.loads(json.dumps(scenario.to_dict()))
        clone = IncidentScenario.from_dict(data)
        assert clone == scenario
        # Derived fields travel in the dict but are recomputed on load.
        assert data["kind"] == scenario.kind
        assert data["fault_points"] == list(scenario.fault_points)


def test_from_dict_rejects_unknown_fields():
    data = get_scenario("control").to_dict()
    data["severity"] = "bad"
    with pytest.raises(IncidentError, match="unknown scenario fields"):
        IncidentScenario.from_dict(data)


def test_get_scenario_unknown_name_fails_loudly():
    with pytest.raises(IncidentError, match="unknown incident scenario"):
        get_scenario("nope")
    assert set(scenario_names()) == set(SCENARIOS)


def test_scenario_validation():
    plan = FaultPlan(seed=1)
    with pytest.raises(IncidentError, match="no spaces"):
        IncidentScenario(name="has space", description="", plan=plan)
    with pytest.raises(IncidentError, match="must be a FaultPlan"):
        IncidentScenario(name="x", description="", plan={"seed": 1})
    with pytest.raises(IncidentError, match="must be a LoadProfile"):
        IncidentScenario(name="x", description="", plan=plan, load={})


def test_load_profile_validation_and_round_trip():
    load = LoadProfile(n_clients=2, requests_per_client=5, overlay_every=3)
    assert load.total_requests == 10
    assert LoadProfile.from_dict(load.to_dict()) == load
    with pytest.raises(IncidentError, match="n_clients"):
        LoadProfile(n_clients=0)
    with pytest.raises(IncidentError, match="requests_per_client"):
        LoadProfile(requests_per_client=0)
    with pytest.raises(IncidentError, match="think_time_s"):
        LoadProfile(think_time_s=-0.1)
    with pytest.raises(IncidentError, match="unknown load-profile fields"):
        LoadProfile.from_dict({"n_clients": 1, "qps": 100})
