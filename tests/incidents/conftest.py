"""Incident-suite fixtures: a tiny scenario and the injector leak guard.

Like the chaos suite, every test here must leave the process disarmed —
the injector is a module global, so a leaked armed plan would poison
unrelated tests. The autouse guard turns a leak into a loud failure at
the test that caused it.
"""

from __future__ import annotations

import pytest

from repro.faults.injector import active_injector
from repro.spec import ScenarioSpec

TINY = ScenarioSpec(
    "emmy", seed=3, num_nodes=24, num_users=10, horizon_days=2, max_traces=10
)


@pytest.fixture(scope="session")
def tiny_spec() -> ScenarioSpec:
    return TINY


@pytest.fixture(scope="session")
def incidents_cache(tmp_path_factory):
    """Artifact-cache root shared across incident tests."""
    return tmp_path_factory.mktemp("incidents-cache")


@pytest.fixture(scope="session")
def tiny_service(tiny_spec, incidents_cache):
    """One warmed service shared by the harness tests (caller-owned)."""
    from repro.serve import PredictionService

    service = PredictionService(
        tiny_spec, cache_dir=incidents_cache, max_wait_s=0.001
    )
    service.warm(("BDT",))
    yield service
    service.close()


@pytest.fixture(autouse=True)
def no_leaked_injector():
    """Fail the test (not its neighbors) if it leaves a plan armed."""
    assert active_injector() is None, "a previous test leaked an armed injector"
    yield
    assert active_injector() is None, "test left a fault injector armed"
