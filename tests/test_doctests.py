"""Run every docstring example in the package as a test.

Keeps the examples in module/class docstrings honest — they are the
first code a new user copies.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_module_names():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


@pytest.mark.parametrize("module_name", sorted(_iter_module_names()))
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    failures, _tests = doctest.testmod(
        module, raise_on_error=False, verbose=False
    ).failed, None
    assert failures == 0, f"doctest failures in {module_name}"
