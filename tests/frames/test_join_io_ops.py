"""Tests for join, CSV/NPZ round-trips, and misc ops."""

import numpy as np
import pytest

from repro.errors import ColumnMismatchError, FrameError
from repro.frames import (
    Table,
    join,
    quantile_table,
    rank_dense,
    read_csv,
    read_npz,
    value_counts,
    write_csv,
    write_npz,
)
from repro.frames.ops import cut


class TestJoin:
    def left(self) -> Table:
        return Table({"job": [3, 1, 2, 3], "power": [30.0, 10.0, 20.0, 35.0]})

    def right(self) -> Table:
        return Table({"job": [1, 2, 3], "user": ["a", "b", "c"]})

    def test_inner_enriches(self):
        out = join(self.left(), self.right(), on="job")
        assert out["user"].tolist() == ["c", "a", "b", "c"]
        assert len(out) == 4

    def test_inner_drops_unmatched(self):
        left = Table({"job": [1, 99], "x": [1.0, 2.0]})
        out = join(left, self.right(), on="job", how="inner")
        assert out["job"].tolist() == [1]

    def test_left_requires_all_keys(self):
        left = Table({"job": [1, 99], "x": [1.0, 2.0]})
        with pytest.raises(FrameError, match="missing from right"):
            join(left, self.right(), on="job", how="left")

    def test_duplicate_right_keys_rejected(self):
        right = Table({"job": [1, 1], "user": ["a", "b"]})
        with pytest.raises(FrameError, match="unique"):
            join(self.left(), right, on="job")

    def test_name_clash_suffixed(self):
        right = Table({"job": [1, 2, 3], "power": [0.0, 0.0, 0.0]})
        out = join(self.left(), right, on="job")
        assert "power_right" in out

    def test_missing_key_column(self):
        with pytest.raises(ColumnMismatchError):
            join(self.left(), Table({"x": [1]}), on="job")

    def test_bad_how(self):
        with pytest.raises(FrameError):
            join(self.left(), self.right(), on="job", how="outer")

    def test_string_keys(self):
        left = Table({"u": ["b", "a"], "v": [1, 2]})
        right = Table({"u": ["a", "b"], "w": [10, 20]})
        out = join(left, right, on="u")
        assert out["w"].tolist() == [20, 10]


class TestIO:
    def table(self) -> Table:
        return Table(
            {
                "job": np.asarray([1, 2, 3], dtype=np.int64),
                "user": ["a", "b", "c"],
                "power": [1.5, 2.25, 3.125],
            }
        )

    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(self.table(), path)
        back = read_csv(path)
        assert back == self.table()

    def test_csv_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert len(read_csv(path)) == 0

    def test_csv_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(FrameError, match="expected 2 fields"):
            read_csv(path)

    def test_npz_roundtrip_exact_dtypes(self, tmp_path):
        path = tmp_path / "t.npz"
        write_npz(self.table(), path)
        back = read_npz(path)
        assert back == self.table()
        assert back["job"].dtype == np.int64

    def test_npz_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(FrameError, match="__order__"):
            read_npz(path)

    def test_csv_float_precision(self, tmp_path):
        t = Table({"x": [0.1 + 0.2]})
        path = tmp_path / "prec.csv"
        write_csv(t, path)
        assert read_csv(path)["x"][0] == 0.1 + 0.2


class TestOps:
    def test_value_counts(self):
        t = Table({"app": ["a", "b", "a", "a"]})
        vc = value_counts(t, "app")
        assert vc["app"].tolist() == ["a", "b"]
        assert vc["count"].tolist() == [3, 1]

    def test_rank_dense(self):
        assert rank_dense([30, 10, 30, 20]).tolist() == [2, 0, 2, 1]

    def test_quantile_table(self):
        t = Table({"x": [1.0, 2.0, 3.0, 4.0, 5.0]})
        q = quantile_table(t, "x", qs=(0.0, 0.5, 1.0))
        assert q["x"].tolist() == [1.0, 3.0, 5.0]

    def test_quantile_table_rejects_strings(self):
        with pytest.raises(FrameError):
            quantile_table(Table({"s": ["a"]}), "s")

    def test_quantile_table_rejects_bad_q(self):
        with pytest.raises(FrameError):
            quantile_table(Table({"x": [1.0]}), "x", qs=(1.5,))

    def test_cut(self):
        out = cut([0.5, 1.0, 2.5, 10.0], edges=[1.0, 2.0, 3.0])
        assert out.tolist() == [0, 1, 2, 3]

    def test_cut_rejects_unsorted(self):
        with pytest.raises(FrameError):
            cut([1.0], edges=[2.0, 1.0])
