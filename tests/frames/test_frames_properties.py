"""Property-based tests for the frames substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frames import Table, concat, read_npz, write_npz

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
)
floats = st.floats(allow_nan=False, allow_infinity=False, width=32)


@st.composite
def tables(draw, min_rows=0, max_rows=30):
    n = draw(st.integers(min_rows, max_rows))
    n_cols = draw(st.integers(1, 4))
    col_names = draw(
        st.lists(names, min_size=n_cols, max_size=n_cols, unique=True)
    )
    cols = {}
    for i, name in enumerate(col_names):
        if i % 2 == 0:
            cols[name] = draw(
                st.lists(floats, min_size=n, max_size=n).map(np.asarray)
            )
        else:
            cols[name] = draw(
                st.lists(st.integers(-100, 100), min_size=n, max_size=n)
            )
    return Table(cols)


@given(tables())
@settings(max_examples=50, deadline=None)
def test_take_filter_roundtrip(t):
    """Filtering with an all-True mask is the identity."""
    mask = np.ones(len(t), dtype=bool)
    assert t.filter(mask) == t


@given(tables(min_rows=1))
@settings(max_examples=50, deadline=None)
def test_sort_is_permutation(t):
    """Sorting preserves the multiset of each column."""
    col = t.column_names[0]
    s = t.sort_by(col)
    assert len(s) == len(t)
    assert sorted(map(str, s[col].tolist())) == sorted(map(str, t[col].tolist()))
    values = s[col]
    assert np.all(values[:-1] <= values[1:])


@given(tables())
@settings(max_examples=50, deadline=None)
def test_concat_lengths(t):
    assert len(concat([t, t, t])) == (3 * len(t) if t.column_names else 0)


@given(tables(min_rows=1))
@settings(max_examples=30, deadline=None)
def test_groupby_sizes_partition_rows(t):
    """Group sizes always sum to the table length."""
    g = t.group_by(t.column_names[0])
    assert int(g.sizes().sum()) == len(t)


@given(tables(min_rows=1))
@settings(max_examples=30, deadline=None)
def test_groupby_sum_conserves_total(t):
    """Segment sums over any numeric column add up to the column total."""
    key = t.column_names[0]
    numeric = [n for n in t.column_names if t[n].dtype.kind in "if"]
    if not numeric:
        return
    col = numeric[0]
    g = t.group_by(key).agg(s=(col, "sum"))
    np.testing.assert_allclose(
        float(np.sum(g["s"])), float(np.sum(t[col])), rtol=1e-6, atol=1e-6
    )


@given(tables(min_rows=1))
@settings(max_examples=30, deadline=None)
def test_npz_roundtrip(t):
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t.npz"
        write_npz(t, path)
        assert read_npz(path) == t
