"""Unit tests for vectorized group-by."""

import numpy as np
import pytest

from repro.errors import FrameError
from repro.frames import Table


def make_table() -> Table:
    return Table(
        {
            "user": ["a", "b", "a", "b", "a"],
            "nodes": [1, 2, 1, 2, 4],
            "power": [10.0, 20.0, 30.0, 40.0, 50.0],
        }
    )


class TestGroupBy:
    def test_single_key_mean(self):
        g = make_table().group_by("user").agg(p=("power", "mean"))
        assert g["user"].tolist() == ["a", "b"]
        assert g["p"].tolist() == [30.0, 30.0]

    def test_sum_and_count(self):
        g = make_table().group_by("user").agg(s=("power", "sum"), n=("power", "count"))
        assert g["s"].tolist() == [90.0, 60.0]
        assert g["n"].tolist() == [3, 2]

    def test_min_max_first(self):
        g = make_table().group_by("user").agg(
            lo=("power", "min"), hi=("power", "max"), f=("power", "first")
        )
        assert g["lo"].tolist() == [10.0, 20.0]
        assert g["hi"].tolist() == [50.0, 40.0]
        assert g["f"].tolist() == [10.0, 20.0]

    def test_std_matches_numpy(self):
        g = make_table().group_by("user").agg(sd=("power", "std"))
        expected_a = np.std([10.0, 30.0, 50.0])
        assert g["sd"][0] == pytest.approx(expected_a)

    def test_median(self):
        g = make_table().group_by("user").agg(m=("power", "median"))
        assert g["m"].tolist() == [30.0, 30.0]

    def test_multi_key(self):
        g = make_table().group_by("user", "nodes")
        assert g.num_groups == 3  # (a,1), (a,4), (b,2)
        agg = g.agg(n=("power", "count"))
        lookup = {
            (agg["user"][i], int(agg["nodes"][i])): int(agg["n"][i])
            for i in range(len(agg))
        }
        assert lookup == {("a", 1): 2, ("a", 4): 1, ("b", 2): 2}

    def test_custom_callable(self):
        g = make_table().group_by("user").agg(rng=("power", lambda x: x.max() - x.min()))
        assert g["rng"].tolist() == [40.0, 20.0]

    def test_apply(self):
        g = make_table().group_by("user")
        out = g.apply("power", np.median)
        assert out.tolist() == [30.0, 30.0]

    def test_indices_partition(self):
        g = make_table().group_by("user")
        idx = g.indices()
        combined = np.sort(np.concatenate(idx))
        assert combined.tolist() == [0, 1, 2, 3, 4]

    def test_unknown_agg(self):
        with pytest.raises(FrameError, match="unknown aggregation"):
            make_table().group_by("user").reduce("power", "mode")

    def test_no_keys(self):
        with pytest.raises(FrameError):
            make_table().group_by()

    def test_sizes(self):
        assert make_table().group_by("user").sizes().tolist() == [3, 2]

    def test_integer_keys(self):
        g = make_table().group_by("nodes").agg(n=("power", "count"))
        assert g["nodes"].tolist() == [1, 2, 4]
        assert g["n"].tolist() == [2, 2, 1]
