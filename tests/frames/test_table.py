"""Unit tests for the Table column store."""

import numpy as np
import pytest

from repro.errors import ColumnMismatchError, FrameError
from repro.frames import Table, concat


def make_table() -> Table:
    return Table(
        {
            "user": ["a", "b", "a", "c"],
            "nodes": [1, 4, 2, 8],
            "power": [100.0, 150.0, 120.0, 180.0],
        }
    )


class TestConstruction:
    def test_basic(self):
        t = make_table()
        assert len(t) == 4
        assert t.column_names == ["user", "nodes", "power"]
        assert t.num_columns == 3

    def test_empty(self):
        t = Table({})
        assert len(t) == 0
        assert t.column_names == []

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ColumnMismatchError, match="unequal lengths"):
            Table({"a": [1, 2], "b": [1, 2, 3]})

    def test_scalar_column_rejected(self):
        with pytest.raises(ColumnMismatchError, match="1-D"):
            Table({"a": 5})

    def test_2d_column_rejected(self):
        with pytest.raises(ColumnMismatchError, match="1-D"):
            Table({"a": np.zeros((2, 2))})

    def test_object_dtype_rejected(self):
        with pytest.raises(ColumnMismatchError, match="object dtype"):
            Table({"a": [1, "x", None]})

    def test_object_strings_promoted(self):
        t = Table({"a": np.asarray(["x", "yy"], dtype=object)})
        assert t["a"].dtype.kind == "U"

    def test_empty_name_rejected(self):
        with pytest.raises(ColumnMismatchError):
            Table({"": [1]})

    def test_from_rows(self):
        t = Table.from_rows([{"x": 1, "y": "a"}, {"x": 2, "y": "b"}])
        assert t["x"].tolist() == [1, 2]
        assert t["y"].tolist() == ["a", "b"]

    def test_from_rows_empty(self):
        assert len(Table.from_rows([])) == 0

    def test_from_rows_mismatched_keys(self):
        with pytest.raises(ColumnMismatchError, match="row 1"):
            Table.from_rows([{"x": 1}, {"y": 2}])


class TestAccess:
    def test_column_access(self):
        t = make_table()
        assert t["nodes"].tolist() == [1, 4, 2, 8]

    def test_missing_column(self):
        with pytest.raises(ColumnMismatchError, match="no column"):
            make_table()["missing"]

    def test_contains(self):
        t = make_table()
        assert "user" in t and "zzz" not in t

    def test_row(self):
        row = make_table().row(1)
        assert row == {"user": "b", "nodes": 4, "power": 150.0}

    def test_iter_rows(self):
        rows = list(make_table().iter_rows())
        assert len(rows) == 4
        assert rows[0]["user"] == "a"

    def test_equality(self):
        assert make_table() == make_table()
        assert make_table() != make_table().drop("power")

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(make_table())


class TestRowOps:
    def test_filter(self):
        t = make_table()
        f = t.filter(t["nodes"] > 1)
        assert len(f) == 3
        assert f["user"].tolist() == ["b", "a", "c"]

    def test_filter_requires_bool(self):
        with pytest.raises(ColumnMismatchError, match="boolean"):
            make_table().filter(np.asarray([1, 0, 1, 0]))

    def test_filter_wrong_length(self):
        with pytest.raises(ColumnMismatchError, match="length"):
            make_table().filter(np.asarray([True, False]))

    def test_take_indices(self):
        t = make_table().take(np.asarray([3, 0]))
        assert t["nodes"].tolist() == [8, 1]

    def test_head(self):
        assert len(make_table().head(2)) == 2

    def test_sort_by_single(self):
        t = make_table().sort_by("nodes")
        assert t["nodes"].tolist() == [1, 2, 4, 8]

    def test_sort_by_descending(self):
        t = make_table().sort_by("nodes", descending=True)
        assert t["nodes"].tolist() == [8, 4, 2, 1]

    def test_sort_by_multi_stable(self):
        t = make_table().sort_by("user", "nodes")
        assert t["user"].tolist() == ["a", "a", "b", "c"]
        assert t["nodes"].tolist() == [1, 2, 4, 8]

    def test_sort_requires_column(self):
        with pytest.raises(FrameError):
            make_table().sort_by()


class TestColumnOps:
    def test_select(self):
        t = make_table().select(["power", "user"])
        assert t.column_names == ["power", "user"]

    def test_select_unknown(self):
        with pytest.raises(ColumnMismatchError, match="unknown columns"):
            make_table().select(["nope"])

    def test_drop(self):
        assert make_table().drop("power").column_names == ["user", "nodes"]

    def test_with_column_add(self):
        t = make_table().with_column("double", [2, 8, 4, 16])
        assert t["double"].tolist() == [2, 8, 4, 16]

    def test_with_column_replace(self):
        t = make_table().with_column("nodes", [9, 9, 9, 9])
        assert t["nodes"].tolist() == [9, 9, 9, 9]

    def test_with_column_wrong_length(self):
        with pytest.raises(ColumnMismatchError, match="length"):
            make_table().with_column("x", [1, 2])

    def test_rename(self):
        t = make_table().rename({"power": "watts"})
        assert "watts" in t and "power" not in t

    def test_rename_unknown(self):
        with pytest.raises(ColumnMismatchError):
            make_table().rename({"nope": "x"})

    def test_unique(self):
        assert make_table().unique("user").tolist() == ["a", "b", "c"]

    def test_describe(self):
        d = make_table().describe()
        # Only numeric columns appear.
        assert d["column"].tolist() == ["nodes", "power"]
        row = d.row(1)
        assert row["mean"] == pytest.approx(137.5)

    def test_copy_is_independent(self):
        t = make_table()
        c = t.copy()
        c["nodes"][0] = 99
        assert t["nodes"][0] == 1


class TestConcat:
    def test_concat(self):
        t = make_table()
        c = concat([t, t])
        assert len(c) == 8
        assert c["user"].tolist() == t["user"].tolist() * 2

    def test_concat_empty_list(self):
        assert len(concat([])) == 0

    def test_concat_mismatched(self):
        with pytest.raises(ColumnMismatchError):
            concat([make_table(), make_table().drop("power")])
