"""Tests for the CART regression tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError, NotFittedError
from repro.ml import DecisionTreeRegressor


class TestNumericSplits:
    def test_perfect_step_function(self):
        X = np.asarray([[0.0], [1.0], [2.0], [3.0]])
        y = np.asarray([10.0, 10.0, 20.0, 20.0])
        t = DecisionTreeRegressor().fit(X, y)
        np.testing.assert_allclose(t.predict(X), y)
        assert t.depth() == 1

    def test_piecewise_constant(self):
        rng = np.random.default_rng(0)
        X = rng.random((300, 1))
        y = np.where(X[:, 0] < 0.3, 1.0, np.where(X[:, 0] < 0.7, 5.0, 9.0))
        t = DecisionTreeRegressor().fit(X, y)
        np.testing.assert_allclose(t.predict(X), y)

    def test_constant_target_is_single_leaf(self):
        X = np.random.default_rng(0).random((50, 2))
        t = DecisionTreeRegressor().fit(X, np.full(50, 3.0))
        assert t.num_leaves() == 1
        np.testing.assert_allclose(t.predict(X), 3.0)

    def test_max_depth_respected(self):
        rng = np.random.default_rng(0)
        X, y = rng.random((200, 3)), rng.random(200)
        t = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert t.depth() <= 3

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(0)
        X, y = rng.random((100, 1)), rng.random(100)
        t = DecisionTreeRegressor(min_samples_leaf=10).fit(X, y)
        # With >=10 samples per leaf there are at most 10 leaves.
        assert t.num_leaves() <= 10

    def test_predictions_within_target_range(self):
        rng = np.random.default_rng(1)
        X, y = rng.random((200, 2)), rng.random(200) * 100
        t = DecisionTreeRegressor().fit(X, y)
        preds = t.predict(rng.random((500, 2)))
        assert preds.min() >= y.min() and preds.max() <= y.max()


class TestCategoricalSplits:
    def test_category_means_recovered(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 5, size=400)
        means = np.asarray([10.0, 20.0, 30.0, 40.0, 50.0])
        y = means[codes]
        X = codes[:, None].astype(float)
        t = DecisionTreeRegressor().fit(X, y, categorical=(0,))
        np.testing.assert_allclose(t.predict(X), y)

    def test_categorical_not_ordinal(self):
        """The split must group categories by target, not by code order."""
        codes = np.asarray([0, 1, 2, 3] * 50)
        y = np.where((codes == 0) | (codes == 3), 10.0, 99.0)
        X = codes[:, None].astype(float)
        t = DecisionTreeRegressor(max_depth=1).fit(X, y, categorical=(0,))
        np.testing.assert_allclose(t.predict(X), y)
        assert t.depth() == 1  # one split suffices despite interleaving

    def test_mixed_features(self):
        rng = np.random.default_rng(0)
        user = rng.integers(0, 10, size=600)
        nodes = rng.integers(1, 20, size=600).astype(float)
        y = user * 10.0 + np.where(nodes > 10, 5.0, 0.0)
        X = np.column_stack([user.astype(float), nodes])
        t = DecisionTreeRegressor().fit(X, y, categorical=(0,))
        assert np.abs(t.predict(X) - y).mean() < 0.5

    def test_bad_categorical_index(self):
        with pytest.raises(ModelError, match="out of range"):
            DecisionTreeRegressor().fit(np.zeros((5, 2)), np.arange(5), categorical=(7,))


class TestValidation:
    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.zeros((1, 1)))

    def test_feature_count_mismatch(self):
        t = DecisionTreeRegressor().fit(np.zeros((4, 2)), np.arange(4.0))
        with pytest.raises(ModelError, match="features"):
            t.predict(np.zeros((1, 3)))

    def test_bad_hyperparams(self):
        with pytest.raises(ModelError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ModelError):
            DecisionTreeRegressor(min_samples_leaf=0)
        with pytest.raises(ModelError):
            DecisionTreeRegressor(min_samples_split=1)

    def test_rejects_nan(self):
        with pytest.raises(ModelError):
            DecisionTreeRegressor().fit(np.asarray([[np.nan]]), [1.0])

    def test_rejects_1d_X(self):
        with pytest.raises(ModelError):
            DecisionTreeRegressor().fit(np.zeros(5), np.zeros(5))


@given(st.integers(10, 80), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_training_error_decreases_with_leaf_size(n, seed):
    """A leaf-1 tree never has larger training SSE than a leaf-5 tree."""
    rng = np.random.default_rng(seed)
    X = rng.random((n, 2))
    y = rng.random(n)
    t1 = DecisionTreeRegressor(min_samples_leaf=1).fit(X, y)
    t5 = DecisionTreeRegressor(min_samples_leaf=5).fit(X, y)
    sse1 = float(((t1.predict(X) - y) ** 2).sum())
    sse5 = float(((t5.predict(X) - y) ** 2).sum())
    assert sse1 <= sse5 + 1e-9
