"""Tests for KNN and FLDA regressors."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml import FLDARegressor, KNNRegressor


class TestKNN:
    def test_exact_match_wins_inverse_weighting(self):
        X = np.asarray([[0.0, 1.0], [0.0, 1.0], [5.0, 9.0]])
        y = np.asarray([10.0, 10.0, 99.0])
        m = KNNRegressor(k=3).fit(X, y)
        assert m.predict(np.asarray([[0.0, 1.0]]))[0] == pytest.approx(10.0, abs=0.5)

    def test_k_one_nearest(self):
        X = np.asarray([[0.0], [10.0]])
        y = np.asarray([1.0, 2.0])
        m = KNNRegressor(k=1).fit(X, y)
        assert m.predict([[1.0]])[0] == 1.0
        assert m.predict([[9.0]])[0] == 2.0

    def test_uniform_weighting_averages(self):
        X = np.asarray([[0.0], [1.0], [100.0]])
        y = np.asarray([0.0, 10.0, 99.0])
        m = KNNRegressor(k=2, weighting="uniform").fit(X, y)
        assert m.predict([[0.4]])[0] == pytest.approx(5.0)

    def test_categorical_penalty(self):
        # Same numerics, different category: penalty pushes the match away.
        X = np.asarray([[0.0, 5.0], [1.0, 5.0]])
        y = np.asarray([10.0, 20.0])
        m = KNNRegressor(k=1, categorical_weight=10.0).fit(X, y, categorical=(0,))
        assert m.predict(np.asarray([[1.0, 5.0]]))[0] == 20.0

    def test_use_categorical_false_ignores_flag(self):
        X = np.asarray([[0.0, 5.0], [100.0, 5.0]])
        y = np.asarray([10.0, 20.0])
        m = KNNRegressor(k=1, use_categorical=False).fit(X, y, categorical=(0,))
        # user code becomes numeric; 60 is closer to 100 after scaling
        assert m.predict(np.asarray([[90.0, 5.0]]))[0] == 20.0

    def test_k_larger_than_train(self):
        m = KNNRegressor(k=50).fit(np.asarray([[0.0], [1.0]]), np.asarray([1.0, 3.0]))
        assert 1.0 <= m.predict([[0.5]])[0] <= 3.0

    def test_chunking_consistent(self, rng):
        X = rng.random((200, 3))
        y = rng.random(200)
        a = KNNRegressor(k=5, chunk_size=7).fit(X, y).predict(X)
        b = KNNRegressor(k=5, chunk_size=512).fit(X, y).predict(X)
        np.testing.assert_allclose(a, b)

    def test_validation(self):
        with pytest.raises(ModelError):
            KNNRegressor(k=0)
        with pytest.raises(ModelError):
            KNNRegressor(weighting="gaussian")
        with pytest.raises(NotFittedError):
            KNNRegressor().predict(np.zeros((1, 1)))


class TestFLDA:
    def test_separable_bins(self, rng):
        # Power determined by a categorical user: FLDA should learn it.
        user = rng.integers(0, 4, size=400)
        y = np.asarray([50.0, 100.0, 150.0, 200.0])[user]
        X = user[:, None].astype(float)
        m = FLDARegressor(n_bins=8).fit(X, y, categorical=(0,))
        preds = m.predict(X)
        assert np.abs(preds - y).mean() < 20.0

    def test_linear_failure_mode(self, rng):
        """FLDA cannot separate a XOR-like nonlinear structure."""
        x1 = rng.integers(0, 2, size=500)
        x2 = rng.integers(0, 2, size=500)
        y = np.where(x1 == x2, 100.0, 200.0)  # XOR target
        X = np.column_stack([x1, x2]).astype(float)
        m = FLDARegressor(n_bins=2).fit(X, y)
        err = np.abs(m.predict(X) - y).mean()
        assert err > 20.0  # linear boundaries cannot fix XOR

    def test_predict_class_indices(self, rng):
        X = rng.random((100, 2))
        y = X[:, 0] * 100
        m = FLDARegressor(n_bins=5).fit(X, y)
        classes = m.predict_class(X)
        assert classes.min() >= 0

    def test_predictions_are_bin_means(self, rng):
        X = rng.random((200, 1)) * 10
        y = X[:, 0] * 10 + rng.normal(0, 0.5, 200)
        m = FLDARegressor(n_bins=4).fit(X, y)
        preds = set(np.round(m.predict(X), 6).tolist())
        assert len(preds) <= 4

    def test_constant_target_rejected(self):
        with pytest.raises(ModelError, match="single class"):
            FLDARegressor().fit(np.random.rand(20, 2), np.full(20, 5.0))

    def test_unseen_category_code_rejected(self):
        X = np.asarray([[0.0], [1.0], [0.0], [1.0]])
        y = np.asarray([1.0, 2.0, 1.1, 2.1])
        m = FLDARegressor(n_bins=2).fit(X, y, categorical=(0,))
        with pytest.raises(ModelError, match="codes outside"):
            m.predict(np.asarray([[5.0]]))

    def test_validation(self):
        with pytest.raises(ModelError):
            FLDARegressor(n_bins=1)
        with pytest.raises(ModelError):
            FLDARegressor(ridge=0.0)
        with pytest.raises(NotFittedError):
            FLDARegressor().predict(np.zeros((1, 1)))
