"""Tests for the rule-based baselines and the online predictor."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError, ValidationError
from repro.frames import Table
from repro.ml import (
    GlobalMeanBaseline,
    GroupMeanBaseline,
    HierarchicalRuleBaseline,
    OnlinePowerPredictor,
    evaluate_online,
)


class TestGlobalMean:
    def test_predicts_mean(self):
        m = GlobalMeanBaseline().fit(np.zeros((4, 2)), [1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(m.predict(np.zeros((3, 2))), 2.5)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            GlobalMeanBaseline().predict(np.zeros((1, 1)))


class TestGroupMean:
    def test_per_group_means(self):
        X = np.asarray([[0.0], [0.0], [1.0]])
        m = GroupMeanBaseline().fit(X, [10.0, 20.0, 99.0])
        np.testing.assert_allclose(
            m.predict(np.asarray([[0.0], [1.0]])), [15.0, 99.0]
        )

    def test_fallback_to_global(self):
        X = np.asarray([[0.0], [1.0]])
        m = GroupMeanBaseline().fit(X, [10.0, 30.0])
        assert m.predict(np.asarray([[7.0]]))[0] == 20.0

    def test_bad_columns(self):
        with pytest.raises(ModelError):
            GroupMeanBaseline(group_columns=(5,)).fit(np.zeros((2, 2)), [1.0, 2.0])

    def test_empty_columns(self):
        with pytest.raises(ModelError):
            GroupMeanBaseline(group_columns=())


class TestHierarchicalRule:
    def make(self):
        # columns: user, nodes, wall
        X = np.asarray(
            [
                [0, 2, 100],
                [0, 2, 100],
                [0, 4, 100],
                [1, 2, 100],
            ],
            dtype=float,
        )
        y = np.asarray([10.0, 12.0, 30.0, 50.0])
        return HierarchicalRuleBaseline().fit(X, y)

    def test_exact_match(self):
        m = self.make()
        assert m.predict(np.asarray([[0, 2, 100]], dtype=float))[0] == 11.0

    def test_backoff_to_user_nodes(self):
        m = self.make()
        # (0, 4, 999): unseen exact config; (0,4) level matches.
        assert m.predict(np.asarray([[0, 4, 999]], dtype=float))[0] == 30.0

    def test_backoff_to_user(self):
        m = self.make()
        # (1, 9, 9): only user level matches.
        assert m.predict(np.asarray([[1, 9, 9]], dtype=float))[0] == 50.0

    def test_backoff_to_global(self):
        m = self.make()
        assert m.predict(np.asarray([[7, 7, 7]], dtype=float))[0] == pytest.approx(25.5)

    def test_empty_levels(self):
        with pytest.raises(ModelError):
            HierarchicalRuleBaseline(levels=())

    def test_weaker_than_tree_on_generated_data(self, emmy_small):
        """The paper's claim: rule-based approaches underperform the BDT."""
        from repro.analysis import run_prediction
        from repro.ml import DecisionTreeRegressor

        results = run_prediction(
            emmy_small,
            models={
                "BDT": lambda: DecisionTreeRegressor(min_samples_leaf=1),
                "rule": HierarchicalRuleBaseline,
                "global": GlobalMeanBaseline,
            },
            n_repeats=2,
        )
        assert (
            results["BDT"].summary.frac_below_10pct
            >= results["rule"].summary.frac_below_10pct - 0.02
        )
        assert (
            results["rule"].summary.frac_below_10pct
            > results["global"].summary.frac_below_10pct
        )


class TestOnlinePredictor:
    def test_learns_exact_config(self):
        p = OnlinePowerPredictor()
        p.observe("u1", 4, 3600, 100.0)
        p.observe("u1", 4, 3600, 110.0)
        assert p.predict("u1", 4, 3600) == pytest.approx(105.0)

    def test_backoff_chain(self):
        p = OnlinePowerPredictor()
        p.observe("u1", 4, 3600, 100.0)
        assert p.predict("u1", 4, 7200) == 100.0  # (user, nodes)
        assert p.predict("u1", 8, 7200) == 100.0  # user level
        assert p.predict("u2", 8, 7200) == 100.0  # global level

    def test_cold_start(self):
        assert OnlinePowerPredictor().predict("u1", 1, 600) == 0.0

    def test_min_count_gate(self):
        p = OnlinePowerPredictor(min_count=2)
        p.observe("u1", 4, 3600, 100.0)
        p.observe("u1", 2, 3600, 50.0)
        # Exact level has 1 observation (< 2): falls through to user (2 obs).
        assert p.predict("u1", 4, 3600) == pytest.approx(75.0)

    def test_invalid_observation(self):
        with pytest.raises(ValidationError):
            OnlinePowerPredictor().observe("u1", 1, 600, 0.0)


class TestEvaluateOnline:
    def test_learning_works(self, emmy_small):
        result = evaluate_online(emmy_small.jobs)
        assert result.summary.n == emmy_small.num_jobs - result.warmup_jobs
        # Once warm, repeated configurations dominate: the median error
        # is small even though new job classes keep arriving (each forces
        # one cold prediction — the curve is not monotone by design).
        assert result.summary.frac_below_10pct > 0.5
        assert result.summary.median < 0.10
        assert not np.any(np.isnan(result.learning_curve))

    def test_online_beats_global_mean(self, emmy_small):
        """The hierarchy must earn its keep over a global running mean."""
        result = evaluate_online(emmy_small.jobs)
        jobs = emmy_small.jobs.sort_by("submit_s")
        actual = jobs["pernode_power_w"].astype(float)
        warm = result.warmup_jobs
        running_mean = np.cumsum(actual) / np.arange(1, len(actual) + 1)
        naive = np.abs(actual[warm:] - running_mean[warm - 1 : -1]) / actual[warm:]
        assert result.summary.mean < naive.mean()

    def test_missing_columns(self):
        with pytest.raises(ValidationError, match="columns"):
            evaluate_online(Table({"user": ["a"] * 20}))

    def test_tiny_table(self, emmy_small):
        with pytest.raises(ValidationError):
            evaluate_online(emmy_small.jobs.head(5))

    def test_bad_warmup(self, emmy_small):
        with pytest.raises(ValidationError):
            evaluate_online(emmy_small.jobs, warmup_fraction=1.0)
