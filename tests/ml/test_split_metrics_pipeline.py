"""Tests for the evaluation protocol, metrics, encoding, and pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError, ValidationError
from repro.frames import Table
from repro.ml import (
    FeatureSpec,
    absolute_percentage_error,
    encode_features,
    error_summary,
    evaluate_models,
    per_group_error,
    repeated_splits,
    train_validation_split,
)
from repro.ml.encoding import CategoryEncoder
from repro.ml.tree import DecisionTreeRegressor


class TestSplit:
    def test_partition(self, rng):
        groups = rng.choice(["a", "b", "c"], size=100)
        tr, va = train_validation_split(groups, rng=rng)
        assert len(tr) + len(va) == 100
        assert len(np.intersect1d(tr, va)) == 0

    def test_seen_group_constraint(self, rng):
        """Every validation group must appear in training."""
        groups = np.repeat([f"u{i}" for i in range(20)], 3)
        tr, va = train_validation_split(groups, rng=rng)
        assert set(groups[va]) <= set(groups[tr])

    def test_all_singletons_is_an_error(self, rng):
        """With one job per user the repair empties validation: refuse."""
        groups = np.asarray([f"u{i}" for i in range(50)])
        with pytest.raises(ValidationError, match="empty"):
            train_validation_split(groups, rng=rng)

    def test_constraint_with_many_singletons(self, rng):
        groups = np.concatenate([["big"] * 50, [f"s{i}" for i in range(20)]])
        tr, va = train_validation_split(groups, rng=rng)
        assert set(groups[va]) <= set(groups[tr])

    def test_fraction_roughly_respected(self, rng):
        groups = rng.choice(["a", "b"], size=1000)
        tr, va = train_validation_split(groups, train_fraction=0.8, rng=rng)
        assert 0.75 < len(tr) / 1000 < 0.9

    def test_repeated_splits_differ(self):
        groups = np.repeat(["a", "b", "c", "d"], 25)
        splits = list(repeated_splits(groups, n_repeats=10, seed=0))
        assert len(splits) == 10
        assert len({tuple(tr.tolist()) for tr, _ in splits}) > 1

    def test_repeated_splits_deterministic(self):
        groups = np.repeat(["a", "b"], 20)
        a = [tr.tolist() for tr, _ in repeated_splits(groups, 3, seed=1)]
        b = [tr.tolist() for tr, _ in repeated_splits(groups, 3, seed=1)]
        assert a == b

    def test_validation_errors(self):
        with pytest.raises(ValidationError):
            train_validation_split(["a"])
        with pytest.raises(ValidationError):
            train_validation_split(["a", "b"], train_fraction=1.5)
        with pytest.raises(ValidationError):
            list(repeated_splits(["a", "b"], n_repeats=0))


class TestMetrics:
    def test_ape_basic(self):
        e = absolute_percentage_error([100.0, 200.0], [90.0, 220.0])
        np.testing.assert_allclose(e, [0.10, 0.10])

    def test_ape_rejects_nonpositive_actual(self):
        with pytest.raises(ValidationError):
            absolute_percentage_error([0.0], [1.0])

    def test_ape_shape_mismatch(self):
        with pytest.raises(ValidationError):
            absolute_percentage_error([1.0], [1.0, 2.0])

    def test_error_summary(self):
        s = error_summary([0.01, 0.02, 0.06, 0.20])
        assert s.frac_below_5pct == 0.5
        assert s.frac_below_10pct == 0.75
        assert s.n == 4
        assert set(s.as_dict()) == {
            "mean", "median", "frac_below_5pct", "frac_below_10pct", "n",
        }

    def test_per_group_error(self):
        ids, means = per_group_error(["a", "a", "b"], [0.1, 0.3, 0.5])
        assert ids.tolist() == ["a", "b"]
        np.testing.assert_allclose(means, [0.2, 0.5])

    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=50)
    )
    @settings(max_examples=30, deadline=None)
    def test_ape_nonnegative(self, actual):
        predicted = [a * 1.1 for a in actual]
        e = absolute_percentage_error(actual, predicted)
        assert np.all(e >= 0)
        np.testing.assert_allclose(e, 0.1, rtol=1e-9)


class TestEncoding:
    def test_category_roundtrip(self):
        enc = CategoryEncoder().fit(["b", "a", "b"])
        assert enc.transform(["a", "b"]).tolist() == [0, 1]

    def test_unseen_category_rejected(self):
        enc = CategoryEncoder().fit(["a", "b"])
        with pytest.raises(ModelError, match="unseen"):
            enc.transform(["z"])

    def test_encode_features_matrix(self):
        t = Table({"user": ["a", "b"], "nodes": [2, 4], "req_walltime_s": [600, 1200]})
        X, encoders = encode_features(t)
        assert X.shape == (2, 3)
        # log1p applied to numerics
        assert X[0, 1] == pytest.approx(np.log1p(2))

    def test_encoders_reused_for_validation(self):
        spec = FeatureSpec()
        train = Table({"user": ["a", "b"], "nodes": [1, 2], "req_walltime_s": [60, 60]})
        val = Table({"user": ["b"], "nodes": [2], "req_walltime_s": [60]})
        _, encoders = encode_features(train, spec)
        Xv, _ = encode_features(val, spec, encoders=encoders)
        assert Xv[0, 0] == 1.0  # "b" keeps its training code


class TestPipeline:
    def make_jobs(self, n=300, seed=0) -> Table:
        rng = np.random.default_rng(seed)
        users = rng.choice(["u1", "u2", "u3", "u4"], size=n)
        nodes = rng.choice([1, 2, 4, 8], size=n)
        wall = rng.choice([3600, 7200, 14400], size=n)
        base = {"u1": 100.0, "u2": 140.0, "u3": 170.0, "u4": 120.0}
        power = np.asarray([base[u] for u in users]) + nodes * 2.0
        power *= rng.lognormal(0.0, 0.02, size=n)
        return Table(
            {
                "user": users,
                "nodes": nodes.astype(np.int64),
                "req_walltime_s": wall.astype(np.int64),
                "pernode_power_w": power,
            }
        )

    def test_evaluate_models_runs(self):
        jobs = self.make_jobs()
        results = evaluate_models(
            jobs,
            {"tree": lambda: DecisionTreeRegressor(min_samples_leaf=2)},
            n_repeats=2,
        )
        r = results["tree"]
        assert r.summary.frac_below_10pct > 0.8
        ids, means = r.per_user_mean_error()
        assert set(ids.tolist()) <= {"u1", "u2", "u3", "u4"}

    def test_missing_target_rejected(self):
        jobs = self.make_jobs().drop("pernode_power_w")
        with pytest.raises(ValidationError, match="target"):
            evaluate_models(jobs, {"t": DecisionTreeRegressor})

    def test_missing_feature_rejected(self):
        jobs = self.make_jobs().drop("nodes")
        with pytest.raises(ValidationError, match="feature"):
            evaluate_models(jobs, {"t": DecisionTreeRegressor})
