"""Evaluation tracks and probability metrics (docs/SCENARIOS.md)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.frames import Table
from repro.ml import (
    FAILURE_TRACK,
    GPU_POWER_TRACK,
    POWER_TRACK,
    brier_error,
    classification_summary,
    get_track,
    known_tracks,
)


class TestRegistry:
    def test_known_tracks(self):
        assert known_tracks() == ["failures", "gpu_power", "power"]

    def test_lookup_is_case_insensitive(self):
        assert get_track("GPU_Power") is GPU_POWER_TRACK
        assert get_track("power") is POWER_TRACK

    def test_unknown_track_raises(self):
        with pytest.raises(ValidationError, match="unknown track 'nope'"):
            get_track("nope")

    def test_feature_spec_is_never_shared(self):
        """Each call builds a fresh FeatureSpec — the PR-3 shared-default
        bug class must not reappear through the track registry."""
        for track in (POWER_TRACK, GPU_POWER_TRACK, FAILURE_TRACK):
            assert track.feature_spec() is not track.feature_spec()

    def test_gpu_track_definition(self):
        assert GPU_POWER_TRACK.target_column == "gpu_power_w"
        assert "gpus" in GPU_POWER_TRACK.numeric_features
        assert GPU_POWER_TRACK.filter_column == "gpus"
        assert FAILURE_TRACK.error_kind == "brier"


class TestSelect:
    def test_missing_columns_name_the_track(self):
        jobs = Table({"nodes": np.array([1, 2]),
                      "req_walltime_s": np.array([60, 60])})
        with pytest.raises(ValidationError, match="track 'gpu_power'"):
            GPU_POWER_TRACK.select(jobs)

    def test_filter_keeps_only_board_holding_rows(self):
        jobs = Table({
            "nodes": np.array([1, 2, 1]),
            "req_walltime_s": np.array([60, 60, 60]),
            "gpus": np.array([0, 4, 8]),
            "gpu_power_w": np.array([0.0, 900.0, 2000.0]),
        })
        rows = GPU_POWER_TRACK.select(jobs)
        assert rows["gpus"].tolist() == [4, 8]

    def test_power_track_selects_everything(self, alex_small):
        rows = POWER_TRACK.select(alex_small.jobs)
        assert len(rows) == alex_small.num_jobs


class TestBrier:
    def test_matches_squared_probability_error(self):
        actual = np.array([0.0, 1.0, 1.0, 0.0])
        predicted = np.array([0.1, 0.8, 0.4, 0.0])
        np.testing.assert_allclose(
            brier_error(actual, predicted), [0.01, 0.04, 0.36, 0.0]
        )

    def test_clips_predictions_into_probability_range(self):
        out = brier_error(np.array([1.0]), np.array([1.7]))
        assert out[0] == 0.0

    def test_rejects_non_binary_actuals(self):
        with pytest.raises(ValidationError):
            brier_error(np.array([0.5]), np.array([0.5]))

    def test_classification_summary(self):
        actual = np.array([1.0, 0.0, 0.0, 1.0])
        predicted = np.array([0.9, 0.2, 0.7, 0.6])
        s = classification_summary(actual, predicted)
        assert s.n == 4
        assert s.base_rate == 0.5
        assert s.accuracy == 0.75  # the 0.7 on a true 0 misclassifies
        assert s.brier == pytest.approx(np.mean(
            (np.array([0.9, 0.2, 0.7, 0.6]) - actual) ** 2
        ))
        assert set(s.as_dict()) == {"brier", "accuracy", "base_rate", "n"}
