"""Smoke tests for the perf-regression harness (tools/perf_check.py)."""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
PERF_CHECK = REPO_ROOT / "tools" / "perf_check.py"

TINY_FLAGS = [
    "--num-nodes", "16", "--num-users", "8",
    "--horizon-s", str(2 * 86400), "--max-traces", "5",
    "--reps", "1", "--quiet",
]


def run_tool(*extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(PERF_CHECK), *TINY_FLAGS, *extra],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )


def test_measure_writes_json(tmp_path):
    out = tmp_path / "bench.json"
    proc = run_tool("--json", str(out))
    assert proc.returncode == 0, proc.stderr
    data = json.loads(out.read_text())
    assert set(data["stages"]) == {
        "inputs", "workload", "schedule", "telemetry", "join"
    }
    assert data["n_jobs"] > 0
    assert data["jobs_per_second"] > 0
    assert data["total_seconds"] > 0


def test_check_mode_gates_on_baseline(tmp_path):
    baseline = tmp_path / "BENCH.json"
    # No baseline yet: --check is a hard error, not a silent pass.
    proc = run_tool("--check", "--baseline", str(baseline))
    assert proc.returncode == 2

    proc = run_tool("--update", "--baseline", str(baseline),
                    "--pre-pr-seconds", "9.9")
    assert proc.returncode == 0, proc.stderr
    data = json.loads(baseline.read_text())
    assert data["pre_pr_baseline"]["total_seconds"] == 9.9
    assert data["pre_pr_baseline"]["speedup"] > 0

    # Same config, fresh measurement: passes the gate.
    proc = run_tool("--check", "--baseline", str(baseline))
    assert proc.returncode == 0, proc.stderr + proc.stdout

    # An absurdly fast fake baseline forces a regression verdict.
    data["jobs_per_second"] = data["jobs_per_second"] * 1000
    baseline.write_text(json.dumps(data))
    proc = run_tool("--check", "--baseline", str(baseline))
    assert proc.returncode == 1
    assert "REGRESSION" in proc.stdout

    # A baseline from a different configuration is rejected.
    data["config"]["num_nodes"] = 99
    baseline.write_text(json.dumps(data))
    proc = run_tool("--check", "--baseline", str(baseline))
    assert proc.returncode == 2


def test_committed_baseline_is_current():
    """BENCH_dataset.json exists and matches the harness schema."""
    baseline = REPO_ROOT / "BENCH_dataset.json"
    assert baseline.is_file()
    data = json.loads(baseline.read_text())
    assert data["config"]["system"] == "emmy"
    assert data["config"]["seed"] == 7
    assert data["jobs_per_second"] > 0
    assert data["pre_pr_baseline"]["speedup"] >= 3.0
