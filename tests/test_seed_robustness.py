"""Cross-seed robustness of the headline calibration bands.

EXPERIMENTS.md asserts the benchmark bands are loose enough to hold
across seeds; this test checks the load-bearing ones on three seeds of a
quarter-scale Emmy. Kept at moderate scale so the whole sweep stays
under ~15 s.
"""

import numpy as np
import pytest

import repro

SEEDS = (11, 222, 3333)
SCALE = dict(num_nodes=140, num_users=70, horizon_s=30 * 86400, max_traces=300)


@pytest.fixture(scope="module")
def sweep():
    return [repro.generate_dataset("emmy", seed=s, **SCALE) for s in SEEDS]


def test_power_level_band(sweep):
    for ds in sweep:
        dist = repro.per_node_power_distribution(ds)
        assert 0.60 < dist.mean_tdp_fraction < 0.78
        assert 0.18 < dist.std_over_mean < 0.40


def test_stranded_power_band(sweep):
    for ds in sweep:
        power = repro.power_utilization(ds)
        util = repro.system_utilization(ds)
        assert util.mean > 0.75
        assert 0.20 < power.stranded_fraction < 0.45


def test_correlation_signs(sweep):
    for ds in sweep:
        corr = repro.feature_power_correlations(ds)
        # Quarter-scale traces carry few users, so rank correlations
        # are noisy; only signs and rough magnitude are stable.
        assert corr["job_length"].statistic > 0.10
        assert corr["job_size"].statistic > -0.05


def test_temporal_spatial_bands(sweep):
    for ds in sweep:
        t = repro.temporal_summary(ds)
        s = repro.spatial_summary(ds)
        assert t.mean_temporal_cov < 0.20
        assert t.mean_peak_overshoot < 0.25
        assert 0.07 < s.mean_spread_fraction < 0.25


def test_concentration_band(sweep):
    for ds in sweep:
        c = repro.concentration_analysis(ds)
        assert c.node_hours_share > 0.70
        assert c.top_set_overlap > 0.70


def test_prediction_band(sweep):
    for ds in sweep:
        results = repro.run_prediction(ds, n_repeats=2, seed=0)
        # Class density grows with trace length; at quarter scale the
        # BDT sits lower than the full-scale ~0.93 (see EXPERIMENTS.md).
        assert results["BDT"].summary.frac_below_10pct > 0.70
        assert (
            results["BDT"].summary.frac_below_10pct
            > results["FLDA"].summary.frac_below_10pct + 0.05
        )


def test_seeds_differ(sweep):
    """Sanity: the three sweeps are genuinely different datasets."""
    counts = {ds.num_jobs for ds in sweep}
    assert len(counts) == 3
    means = [float(ds.jobs["pernode_power_w"].mean()) for ds in sweep]
    assert len(set(np.round(means, 6))) == 3
