"""Serving the heterogeneous track models (GPU / FAIL) end to end.

The registry trains them from the scenario's own dataset through the
track definitions (repro.ml.tracks), the service validates requests
against each servable's feature spec (the GPU track needs ``gpus``),
and a track/scenario mismatch is a caller error — a 400-class
ServeError — never a silent degrade to the CPU mean baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve.registry import SERVE_MODELS, ModelRegistry
from repro.serve.service import PredictionService
from repro.spec import ScenarioSpec

ALEX_TINY = ScenarioSpec("alex", seed=3, num_users=12, horizon_days=6)


@pytest.fixture(scope="module")
def alex_service(tmp_path_factory):
    cache = tmp_path_factory.mktemp("alex-serve-cache")
    service = PredictionService(
        ALEX_TINY, registry=ModelRegistry(cache_dir=cache)
    )
    yield service
    service.close()


@pytest.fixture(scope="module")
def gpu_record():
    return {"user": "u0001", "nodes": 2, "req_walltime_s": 7200, "gpus": 8}


def test_track_models_are_registered():
    assert "GPU" in SERVE_MODELS and "FAIL" in SERVE_MODELS


def test_gpu_predict_serves_board_power(alex_service, gpu_record):
    response = alex_service.predict_request(
        {"records": [gpu_record], "model": "GPU", "mode": "bulk"}
    )
    assert response.served_by == "GPU"
    assert not response.degraded
    assert response.predictions[0] > 0

def test_gpu_request_without_gpus_field_is_rejected(alex_service):
    with pytest.raises(ServeError, match="gpus"):
        alex_service.predict_request({
            "records": [{"user": "u0001", "nodes": 2, "req_walltime_s": 7200}],
            "model": "GPU", "mode": "bulk",
        })


def test_fail_predict_returns_probabilities(alex_service, gpu_record):
    response = alex_service.predict_request(
        {"records": [gpu_record] * 4, "model": "FAIL", "mode": "bulk"}
    )
    assert response.served_by == "FAIL"
    preds = np.asarray(response.predictions, dtype=float)
    assert ((preds >= 0) & (preds <= 1)).all()


def test_track_model_on_cpu_scenario_is_a_caller_error(tmp_path, gpu_record):
    emmy = ScenarioSpec("emmy", seed=3, num_nodes=24, num_users=10,
                        horizon_days=2, max_traces=10)
    service = PredictionService(emmy, registry=ModelRegistry(cache_dir=tmp_path))
    try:
        with pytest.raises(ServeError, match="no GPUs"):
            service.predict_request(
                {"records": [gpu_record], "model": "GPU", "mode": "bulk"}
            )
        with pytest.raises(ServeError, match="failure"):
            service.predict_request(
                {"records": [gpu_record], "model": "FAIL", "mode": "bulk"}
            )
    finally:
        service.close()


def test_gpu_served_matches_offline_predictor(alex_service, gpu_record):
    """The flat-array serving path answers exactly what the offline
    fitted predictor answers (bit identity, as for BDT)."""
    servable = alex_service.registry.get(ALEX_TINY, "GPU")
    direct = servable.predictor.predict_records([gpu_record])
    served = alex_service.predict_request(
        {"records": [gpu_record], "model": "GPU", "mode": "bulk"}
    ).predictions
    np.testing.assert_array_equal(np.asarray(served), direct)
