"""Model lifecycle: feedback determinism, drift, shadow, promote/rollback.

The acceptance bars (docs/LIFECYCLE.md):

* feedback ingest is prequential and deterministic — the same records
  in the same order produce a bit-identical learner state, regardless
  of batch boundaries;
* promote -> rollback round-trips to *bit-identical* predictions
  (versions are immutable artifacts);
* shadow mirroring never blocks or reorders live responses, even when
  the candidate's batcher is stalled outright or slowed by the
  ``batcher.latency`` fault;
* the append-only journal tolerates torn tails and survives artifact
  -cache corruption (``cache.corrupt``) with its lineage intact.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.errors import ServeError
from repro.faults import FaultPlan, FaultRule, arm
from repro.obs import MetricsRegistry
from repro.serve import ModelLifecycle, ModelRegistry, PredictionService
from repro.serve.lifecycle import LineageJournal, replay_feedback


def _lifecycle(tiny_spec, serve_cache, tmp_path, **kwargs) -> ModelLifecycle:
    kwargs.setdefault("metrics", MetricsRegistry())
    return ModelLifecycle(
        tiny_spec,
        registry=ModelRegistry(cache_dir=serve_cache),
        lifecycle_dir=tmp_path / "lifecycle",
        **kwargs,
    )


# -- prequential determinism ---------------------------------------------


def test_feedback_is_deterministic_across_batch_boundaries(
    tiny_spec, serve_cache, tmp_path, feedback_records
):
    """Same records, same order -> bit-identical learner state."""
    one = _lifecycle(tiny_spec, serve_cache, tmp_path / "a",
                     seed_learner_from_active=False)
    one.feedback(feedback_records)

    many = _lifecycle(tiny_spec, serve_cache, tmp_path / "b",
                      seed_learner_from_active=False)
    for start in range(0, len(feedback_records), 7):
        many.feedback(feedback_records[start:start + 7])

    assert one.learner_digest() == many.learner_digest()


def test_feedback_order_changes_the_state_digest(
    tiny_spec, serve_cache, tmp_path, feedback_records
):
    fwd = _lifecycle(tiny_spec, serve_cache, tmp_path / "f",
                     seed_learner_from_active=False)
    fwd.feedback(feedback_records)
    rev = _lifecycle(tiny_spec, serve_cache, tmp_path / "r",
                     seed_learner_from_active=False)
    rev.feedback(list(reversed(feedback_records)))
    # Jobs-seen matches, running means match, but the welford-style
    # intermediate state reflects feed order.
    assert fwd._ensure_learner().jobs_seen == rev._ensure_learner().jobs_seen
    assert fwd.learner_digest() != rev.learner_digest()


def test_replay_feedback_matches_manual_feed(
    tiny_spec, serve_cache, tmp_path, feedback_records
):
    from repro.pipeline import build_dataset

    dataset = build_dataset(**tiny_spec.dataset_kwargs(), cache_dir=serve_cache)
    replayed = _lifecycle(tiny_spec, serve_cache, tmp_path / "rp",
                          seed_learner_from_active=False)
    out = replay_feedback(replayed, dataset.jobs, limit=len(feedback_records),
                          batch=13)
    assert out["replayed"] == len(feedback_records)

    manual = _lifecycle(tiny_spec, serve_cache, tmp_path / "mn",
                        seed_learner_from_active=False)
    manual.feedback(feedback_records)
    assert replayed.learner_digest() == manual.learner_digest()


def test_feedback_validation_rejects_bad_records(
    tiny_spec, serve_cache, tmp_path
):
    lc = _lifecycle(tiny_spec, serve_cache, tmp_path)
    with pytest.raises(ServeError, match="at least one"):
        lc.feedback([])
    with pytest.raises(ServeError, match="lacks fields"):
        lc.feedback([{"user": "u", "nodes": 1}])
    with pytest.raises(ServeError, match="positive"):
        lc.feedback([{"user": "u", "nodes": 1, "req_walltime_s": 60,
                      "power_w": 0.0}])


def test_feedback_appends_to_the_scenario_log(
    tiny_spec, serve_cache, tmp_path, feedback_records
):
    lc = _lifecycle(tiny_spec, serve_cache, tmp_path,
                    seed_learner_from_active=False)
    lc.feedback(feedback_records[:5])
    lc.feedback(feedback_records[5:9])
    lines = lc.feedback_path.read_text().splitlines()
    assert len(lines) == 9
    assert json.loads(lines[0])["user"] == feedback_records[0]["user"]


# -- drift ----------------------------------------------------------------


def test_drift_fires_on_shifted_window_and_resets_on_promote(
    tiny_spec, serve_cache, tmp_path, feedback_records
):
    lc = _lifecycle(tiny_spec, serve_cache, tmp_path, min_window=16)
    reference = feedback_records[:16]
    out = lc.feedback(reference)          # first window -> reference
    assert out["drift"] == []
    shifted = [{**r, "power_w": r["power_w"] * 10.0, "nodes": r["nodes"] * 20}
               for r in reference]
    out = lc.feedback(shifted)
    rules = [rule for event in out["drift"] for rule in event["rules"]]
    assert "error" in rules and "feature:nodes" in rules
    assert lc.drift_active("online")
    assert [e["event"] for e in lc.history("online")].count("drift") == 1

    version = lc.create_candidate("online", who="t", why="drift")
    lc.promote("online", version, who="t", why="drift")
    assert not lc.drift_active("online")  # promote resets the latch


# -- promote / rollback ---------------------------------------------------


def test_promote_rollback_round_trip_is_bit_identical(
    tiny_spec, serve_cache, tmp_path, feedback_records, tiny_records
):
    lc = _lifecycle(tiny_spec, serve_cache, tmp_path)
    service = PredictionService(
        tiny_spec, registry=lc.registry, lifecycle=lc, max_wait_s=0.001
    )
    try:
        before = service.predict(tiny_records, model="online")
        # Shifted outcomes: the updated learner must actually move.
        lc.feedback([{**r, "power_w": r["power_w"] * 1.5}
                     for r in feedback_records])
        version = lc.create_candidate("online", who="t", why="fresh state")
        assert version >= 2

        event = lc.promote("online", version, who="t", why="better")
        assert event["from_version"] == 1 and event["version"] == version
        promoted = service.predict_request(tiny_records, model="online")
        assert promoted.version == version
        # The candidate really is the feedback-updated learner.
        assert not np.array_equal(promoted.predictions, before)

        event = lc.rollback("online", who="t", why="regression")
        assert event["version"] == 1
        restored = service.predict_request(tiny_records, model="online")
        assert restored.version == 1
        np.testing.assert_array_equal(restored.predictions, before)
    finally:
        service.close()


def test_promote_guards(tiny_spec, serve_cache, tmp_path, feedback_records):
    lc = _lifecycle(tiny_spec, serve_cache, tmp_path)
    with pytest.raises(ServeError, match="already active"):
        lc.promote("online", 1)
    with pytest.raises(ServeError, match="no stored artifact"):
        lc.promote("online", 99)
    lc.feedback(feedback_records[:4])
    v = lc.create_candidate("online")
    lc.promote("online", v)
    with pytest.raises(ServeError, match="already at version"):
        lc.rollback("online", to_version=v)


def test_rollback_retires_the_candidate(
    tiny_spec, serve_cache, tmp_path, feedback_records
):
    lc = _lifecycle(tiny_spec, serve_cache, tmp_path)
    lc.feedback(feedback_records[:4])
    v = lc.create_candidate("online")
    assert lc.candidate_version("online") == v
    lc.promote("online", v)
    lc.rollback("online")
    # The rejected version must not silently re-enter shadowing.
    assert lc.candidate_version("online") is None
    assert lc.active_version("online") == 1


def test_journal_is_shared_across_managers(
    tiny_spec, serve_cache, tmp_path, feedback_records
):
    """Two managers on one journal file see each other's promotes."""
    a = _lifecycle(tiny_spec, serve_cache, tmp_path)
    b = ModelLifecycle(
        tiny_spec, registry=a.registry, lifecycle_dir=tmp_path / "lifecycle",
        metrics=MetricsRegistry(), journal_poll_s=0.0,
    )
    a.feedback(feedback_records[:4])
    v = a.create_candidate("online", who="a")
    a.promote("online", v, who="a")
    assert b.active_version("online") == v


# -- shadow evaluation ----------------------------------------------------


def _wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def test_shadow_mirroring_never_blocks_live_responses(
    tiny_spec, serve_cache, tmp_path, feedback_records, tiny_records
):
    """Live answers return while the candidate's batcher is stalled."""
    lc = _lifecycle(tiny_spec, serve_cache, tmp_path)
    service = PredictionService(
        tiny_spec, registry=lc.registry, lifecycle=lc, max_wait_s=0.001
    )
    try:
        baseline = service.predict(tiny_records, model="online")
        lc.feedback(feedback_records)
        version = lc.create_candidate("online", who="t", why="shadow")
        shadow_key = (tiny_spec.dataset_digest, "online", version)

        # First mirrored request spawns the background batcher build.
        service.predict(tiny_records[:2], model="online")
        assert _wait_for(lambda: shadow_key in service._batchers)

        # Stall the candidate outright: its predicts block on a gate.
        gate = threading.Event()
        shadow_batcher = service._batchers[shadow_key]
        real_predict = shadow_batcher._predict_fn

        def gated_predict(records):
            gate.wait()
            return real_predict(records)

        shadow_batcher._predict_fn = gated_predict
        report_before = lc.shadow_report("online") or {"n": 0}

        start = time.monotonic()
        live = service.predict_request(tiny_records, model="online")
        elapsed = time.monotonic() - start
        # Live came back correct, in order, served by the active
        # version, without waiting on the gated shadow.
        np.testing.assert_array_equal(live.predictions, baseline)
        assert live.version == 1
        assert elapsed < 5.0 and not gate.is_set()

        gate.set()  # drain: the mirrored records now complete
        assert _wait_for(
            lambda: (lc.shadow_report("online") or {"n": 0})["n"]
            > report_before["n"]
        )
    finally:
        gate.set()
        service.close()


def test_shadow_under_batcher_latency_fault_keeps_live_exact(
    tiny_spec, serve_cache, tmp_path, feedback_records, tiny_records
):
    """batcher.latency slows every batch; live stays exact and ordered."""
    lc = _lifecycle(tiny_spec, serve_cache, tmp_path)
    service = PredictionService(
        tiny_spec, registry=lc.registry, lifecycle=lc, max_wait_s=0.001
    )
    try:
        baseline = service.predict(tiny_records, model="online")
        lc.feedback(feedback_records)
        lc.create_candidate("online", who="t", why="latency fault")
        plan = FaultPlan(
            seed=0,
            rules=(FaultRule("batcher.latency", rate=1.0, duration_s=0.01),),
        )
        with arm(plan):
            for _ in range(3):
                live = service.predict_request(tiny_records, model="online")
                np.testing.assert_array_equal(live.predictions, baseline)
                assert live.version == 1 and not live.degraded
    finally:
        service.close()


# -- journal durability ---------------------------------------------------


def test_journal_tolerates_a_torn_tail(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = LineageJournal(path, poll_s=0.0)
    journal.append("register", "online", version=2, trained_at_key="k")
    journal.append("promote", "online", version=2, from_version=1)
    with path.open("a") as fh:
        fh.write('{"seq": 3, "event": "rollb')  # crash mid-append

    reader = LineageJournal(path, poll_s=0.0)
    assert reader.active_version("online") == 2
    assert len(reader.history()) == 2
    # The torn tail is a *pending* partial line (a writer could still
    # be mid-append), not damage — history simply excludes it.
    assert reader.damaged_lines == 0


def test_journal_skips_and_counts_damaged_lines(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = LineageJournal(path, poll_s=0.0)
    journal.append("register", "online", version=2, trained_at_key="k")
    with path.open("a") as fh:
        fh.write("not json at all\n")
    journal.append("promote", "online", version=2, from_version=1)

    reader = LineageJournal(path, poll_s=0.0)
    assert reader.active_version("online") == 2
    assert reader.damaged_lines == 1


def test_journal_survives_cache_corruption(
    tiny_spec, serve_cache, tmp_path, feedback_records
):
    """cache.corrupt poisons artifacts, never the lineage journal."""
    lc = _lifecycle(tiny_spec, serve_cache, tmp_path)
    lc.feedback(feedback_records[:4])
    v = lc.create_candidate("online", who="t")
    lc.promote("online", v, who="t")
    events_before = [e["event"] for e in lc.history()]

    plan = FaultPlan(seed=0, rules=(FaultRule("cache.corrupt", rate=1.0),))
    with arm(plan):
        # v1 estimator artifacts silently retrain through the fault...
        registry = ModelRegistry(cache_dir=serve_cache)
        registry.get(tiny_spec, "BDT")
        # ...immutable snapshots refuse to guess...
        with pytest.raises(ServeError, match="cannot be retrained"):
            registry.get(tiny_spec, "online", version=v)
        # ...and the journal (plain JSONL, not a cache artifact) keeps
        # the full audit trail and the active pointer.
        fresh = ModelLifecycle(
            tiny_spec, registry=registry,
            lifecycle_dir=tmp_path / "lifecycle", metrics=MetricsRegistry(),
        )
        assert fresh.active_version("online") == v
        assert [e["event"] for e in fresh.history()] == events_before
        assert fresh.journal.damaged_lines == 0
