"""MicroBatcher semantics: coalescing, ordering, errors, lifecycle.

All tests here drive the batcher with synthetic predict functions so the
batch-formation behavior is deterministic: the worker is parked inside a
blocked first call while the test shapes the backlog, then released.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ServeError, ServiceClosed
from repro.serve import MicroBatcher
from repro.serve.batching import BatchStats


def _blocking_predict(calls, release, started):
    """predict_fn that blocks its first call until ``release`` is set."""

    def predict(records):
        calls.append(len(records))
        if len(calls) == 1:
            started.set()
            release.wait(5)
        return [float(r["x"]) for r in records]

    return predict


def test_single_prediction_round_trips():
    with MicroBatcher(lambda rs: [r["x"] * 2 for r in rs], max_wait_s=0) as b:
        assert b.predict({"x": 2.5}) == 5.0


def test_results_follow_request_order():
    with MicroBatcher(lambda rs: [r["x"] for r in rs], max_wait_s=0.01) as b:
        records = [{"x": float(i)} for i in range(50)]
        assert b.predict_many(records) == [float(i) for i in range(50)]


def test_backlog_coalesces_into_one_batch():
    calls, release, started = [], threading.Event(), threading.Event()
    with MicroBatcher(
        _blocking_predict(calls, release, started), max_batch=8, max_wait_s=0
    ) as b:
        first = b.submit({"x": 0})
        assert started.wait(5)
        backlog = [b.submit({"x": i}) for i in range(1, 4)]
        release.set()
        assert first.result(5) == 0.0
        assert [f.result(5) for f in backlog] == [1.0, 2.0, 3.0]
    # The three backlogged records were drained as a single batch even
    # with max_wait_s=0 — adaptive batching under load.
    assert calls == [1, 3]


def test_max_batch_caps_every_call():
    calls, release, started = [], threading.Event(), threading.Event()
    with MicroBatcher(
        _blocking_predict(calls, release, started), max_batch=4, max_wait_s=0
    ) as b:
        futures = [b.submit({"x": i}) for i in range(11)]
        assert started.wait(5)
        release.set()
        assert [f.result(5) for f in futures] == [float(i) for i in range(11)]
    assert max(calls) <= 4 and sum(calls) == 11


def test_stats_track_batches():
    stats = BatchStats()
    stats.record(1)
    stats.record(3)
    snap = stats.snapshot()
    assert snap == {
        "n_requests": 4,
        "n_batches": 2,
        "mean_batch": 2.0,
        "max_batch": 3,
    }


def test_predict_error_reaches_every_waiter_and_batcher_survives():
    def predict(records):
        if any(r.get("bad") for r in records):
            raise ValueError("boom")
        return [r["x"] for r in records]

    with MicroBatcher(predict, max_wait_s=0) as b:
        with pytest.raises(ValueError, match="boom"):
            b.predict({"bad": True})
        # The worker outlives the failed batch.
        assert b.predict({"x": 7.0}) == 7.0


def test_wrong_length_result_is_a_serve_error():
    calls, release, started = [], threading.Event(), threading.Event()

    def predict(records):
        calls.append(len(records))
        if len(calls) == 1:
            started.set()
            release.wait(5)
            return [0.0] * len(records)
        return [0.0]  # deliberately short for the 2-record batch below

    with MicroBatcher(predict, max_batch=8, max_wait_s=0) as b:
        first = b.submit({"x": 0})
        assert started.wait(5)
        pair = [b.submit({"x": i}) for i in (1, 2)]
        release.set()
        assert first.result(5) == 0.0
        for future in pair:
            with pytest.raises(ServeError, match="returned 1 results"):
                future.result(5)
    assert calls == [1, 2]


def test_full_queue_rejects_instead_of_queueing_forever():
    release, started = threading.Event(), threading.Event()

    def predict(records):
        started.set()
        release.wait(5)
        return [0.0] * len(records)

    b = MicroBatcher(predict, max_batch=1, max_wait_s=0, max_queue=2)
    try:
        inflight = b.submit({"x": 0})
        assert started.wait(5)  # worker holds this one; queue is empty
        queued = [b.submit({"x": i}) for i in (1, 2)]
        with pytest.raises(ServeError, match="queue full"):
            b.submit({"x": 3})
        release.set()
        assert inflight.result(5) == 0.0
        assert [f.result(5) for f in queued] == [0.0, 0.0]
    finally:
        release.set()
        b.close()


def test_close_fails_queued_futures_promptly_even_with_a_wedged_worker():
    """Shutdown-race regression: queued futures must never hang.

    The worker is wedged inside a predict call, so the close's join times
    out — everything still queued has to fail with ServiceClosed right
    away instead of waiting out the client timeout.
    """
    release, started = threading.Event(), threading.Event()

    def predict(records):
        started.set()
        release.wait(10)
        return [r["x"] for r in records]

    b = MicroBatcher(predict, max_batch=1, max_wait_s=0)
    try:
        inflight = b.submit({"x": 0.0})
        assert started.wait(5)
        queued = [b.submit({"x": float(i)}) for i in (1, 2, 3)]
        t0 = time.monotonic()
        b.close(timeout=0.2)
        assert time.monotonic() - t0 < 2.0
        for future in queued:
            with pytest.raises(ServiceClosed):
                future.result(timeout=1)
        with pytest.raises(ServiceClosed):
            b.submit({"x": 9.0})
        # Un-wedge the worker: the in-flight request still completes,
        # and the worker sees the shutdown and exits instead of leaking.
        release.set()
        assert inflight.result(5) == 0.0
        b._thread.join(5)
        assert not b.alive
    finally:
        release.set()


def test_submit_after_close_raises():
    b = MicroBatcher(lambda rs: [0.0] * len(rs))
    b.close()
    b.close()  # idempotent
    with pytest.raises(ServeError, match="closed"):
        b.submit({"x": 1})


def test_knob_validation():
    with pytest.raises(ServeError):
        MicroBatcher(lambda rs: rs, max_batch=0)
    with pytest.raises(ServeError):
        MicroBatcher(lambda rs: rs, max_wait_s=-1.0)


def test_idle_batcher_does_not_spin():
    """An idle worker must sleep in its condition wait, not poll.

    The old implementation polled a queue with a short timeout, burning
    CPU while idle; the condition-variable rewrite blocks outright. A
    spinning worker would charge most of the 0.4 s idle window to
    process CPU time — a sleeping one charges (almost) none.
    """
    with MicroBatcher(lambda rs: [0.0] * len(rs), max_wait_s=0.002) as b:
        b.predict({"x": 1})  # worker fully started and back to idle
        cpu0 = time.process_time()
        time.sleep(0.4)
        idle_cpu = time.process_time() - cpu0
    assert idle_cpu < 0.1, f"idle batcher burned {idle_cpu:.3f}s CPU"


def test_wakeup_latency_is_prompt_after_idle():
    """A request arriving after a long idle stretch is served at once
    (the submit notifies the condition; no poll interval to wait out)."""
    with MicroBatcher(lambda rs: [r["x"] for r in rs], max_wait_s=0) as b:
        b.predict({"x": 0.0})
        time.sleep(0.3)
        t0 = time.perf_counter()
        assert b.predict({"x": 7.0}) == 7.0
        assert time.perf_counter() - t0 < 0.2
