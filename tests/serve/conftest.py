"""Serving-layer fixtures: one tiny scenario, shared artifact cache.

The scenario is deliberately small (a 2-day, 24-node Emmy) so model
training during tests costs well under a second; the module-scoped cache
directory lets the dataset artifact be built once and reused by every
registry/service the tests construct against it.
"""

from __future__ import annotations

import pytest

from repro.spec import ScenarioSpec

TINY = ScenarioSpec(
    "emmy", seed=3, num_nodes=24, num_users=10, horizon_days=2, max_traces=10
)


@pytest.fixture(scope="session")
def tiny_spec() -> ScenarioSpec:
    return TINY


@pytest.fixture(scope="session")
def serve_cache(tmp_path_factory):
    """Artifact-cache root shared across serve tests (dataset built once)."""
    return tmp_path_factory.mktemp("serve-cache")


@pytest.fixture(scope="session")
def tiny_records(tiny_spec, serve_cache) -> list[dict]:
    """Prediction-request records drawn from the tiny scenario's own jobs."""
    from repro.pipeline import build_dataset

    dataset = build_dataset(**tiny_spec.dataset_kwargs(), cache_dir=serve_cache)
    jobs = dataset.jobs
    return [
        {
            "user": str(jobs["user"][i]),
            "nodes": int(jobs["nodes"][i]),
            "req_walltime_s": int(jobs["req_walltime_s"][i]),
        }
        for i in range(min(32, len(jobs)))
    ]


@pytest.fixture(scope="session")
def feedback_records(tiny_spec, serve_cache) -> list[dict]:
    """Observed-outcome records (with power) for the lifecycle feedback loop."""
    from repro.pipeline import build_dataset

    dataset = build_dataset(**tiny_spec.dataset_kwargs(), cache_dir=serve_cache)
    jobs = dataset.jobs.sort_by("submit_s")
    return [
        {
            "user": str(jobs["user"][i]),
            "nodes": int(jobs["nodes"][i]),
            "req_walltime_s": int(jobs["req_walltime_s"][i]),
            "power_w": float(jobs["pernode_power_w"][i]),
        }
        for i in range(min(80, len(jobs)))
    ]
