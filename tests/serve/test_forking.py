"""Pre-forked multi-process front-end: fan-in identity, metrics, healing.

The pool's contract extends the single-process one: whichever
``SO_REUSEPORT`` worker the kernel routes a connection to, the
prediction bits must be exactly the ones a lone in-process
:class:`~repro.serve.PredictionService` produces, ``/metrics`` on any
worker must expose the whole fleet, and a killed worker must be
replaced by the supervisor without the survivors dropping requests.

These tests spawn real worker processes (multiprocessing *spawn*), so
the whole module shares one small pool.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import time

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import PredictionService
from repro.serve.forking import ForkingServer, WorkerConfig

pytestmark = pytest.mark.skipif(
    not hasattr(__import__("socket"), "SO_REUSEPORT"),
    reason="platform lacks SO_REUSEPORT",
)


@pytest.fixture(scope="module")
def pool(tiny_spec, serve_cache):
    with ForkingServer(
        tiny_spec, workers=2, cache_dir=serve_cache, max_wait_ms=0.5
    ) as srv:
        yield srv


def _request(pool, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", pool.port, timeout=30)
    conn.request(method, path, body=body, headers=headers or {})
    response = conn.getresponse()
    data = response.read()
    conn.close()
    return response.status, dict(response.getheaders()), data


def _predict_on_every_worker(pool, records, attempts=40):
    """Collect one /predict response per worker id (kernel sharding is
    per-connection, so fresh connections eventually land on each)."""
    body = json.dumps({"model": "BDT", "jobs": records}).encode()
    by_worker: dict[str, list[float]] = {}
    for _ in range(attempts):
        status, headers, data = _request(
            pool, "POST", "/predict", body,
            {"Content-Type": "application/json"},
        )
        assert status == 200, data
        worker = headers.get("X-Worker")
        by_worker.setdefault(worker, [float(p) for p in
                                      json.loads(data)["predictions"]])
        if len(by_worker) >= pool.workers:
            break
    return by_worker


def test_pool_boots_all_workers(pool):
    stats = pool.stats()
    assert stats["alive"] == 2
    assert stats["restarts"] == 0
    assert stats["address"].endswith(str(pool.port))


def test_every_worker_bit_identical_to_single_process(
    pool, tiny_spec, serve_cache, tiny_records
):
    records = tiny_records[:12]
    service = PredictionService(tiny_spec, cache_dir=serve_cache)
    try:
        expected = np.asarray(service.predict(records, model="BDT"))
    finally:
        service.close()

    by_worker = _predict_on_every_worker(pool, records)
    assert len(by_worker) == pool.workers, (
        f"only workers {sorted(by_worker)} answered"
    )
    for worker, values in by_worker.items():
        np.testing.assert_array_equal(
            np.asarray(values), expected,
            err_msg=f"worker {worker} diverged from single-process bits",
        )


def test_bulk_endpoint_identical_across_workers(pool, tiny_records):
    records = tiny_records[:8]
    body = b"\n".join(json.dumps(r).encode() for r in records)
    seen: dict[str, list[float]] = {}
    for _ in range(40):
        status, headers, data = _request(
            pool, "POST", "/predict/bulk?model=BDT", body,
            {"Content-Type": "application/x-ndjson"},
        )
        assert status == 200, data
        assert headers.get("X-N") == str(len(records))
        seen.setdefault(headers.get("X-Worker"),
                        [float(line) for line in data.split()])
        if len(seen) >= pool.workers:
            break
    assert len(seen) >= 2
    baseline = next(iter(seen.values()))
    for worker, values in seen.items():
        assert values == baseline, f"worker {worker} bulk bits diverged"


def test_metrics_aggregated_across_workers(pool, tiny_records):
    # Touch every worker so each has non-zero request counters...
    _predict_on_every_worker(pool, tiny_records[:2])
    time.sleep(1.2)  # ...and let the snapshot writers publish them.
    status, _, data = _request(pool, "GET", "/metrics")
    assert status == 200
    exposition = data.decode()
    line = next(l for l in exposition.splitlines()
                if l.startswith("repro_requests_total"))
    total = float(line.split()[-1])
    # The fleet total must exceed what any single worker served: the
    # fan-in test alone spread >= pool.workers requests across workers.
    assert total >= pool.workers


def test_healthz_reports_worker_id(pool):
    status, _, data = _request(pool, "GET", "/healthz")
    assert status == 200
    assert json.loads(data)["worker"] in range(pool.workers)


def test_supervisor_replaces_killed_worker(pool, tiny_records):
    victim_pid = pool.stats()["pids"][0]
    os.kill(victim_pid, signal.SIGKILL)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        stats = pool.stats()
        if stats["alive"] == pool.workers and stats["pids"][0] != victim_pid:
            break
        time.sleep(0.2)
    else:
        pytest.fail("supervisor did not replace the killed worker")
    assert pool.restarts >= 1
    # The healed pool still serves from every worker, bit-identically —
    # keep probing while the replacement warms its model and binds.
    deadline = time.monotonic() + 60
    by_worker: dict = {}
    while time.monotonic() < deadline and len(by_worker) < pool.workers:
        by_worker = _predict_on_every_worker(pool, tiny_records[:4])
        if len(by_worker) < pool.workers:
            time.sleep(0.5)
    values = list(by_worker.values())
    assert len(values) == pool.workers
    assert all(v == values[0] for v in values)


def test_worker_config_round_trips_scenario(tiny_spec):
    cfg = WorkerConfig(
        scenario=tiny_spec.to_dict(), host="127.0.0.1", port=0,
        worker_id=0, n_workers=1, metrics_dir="/tmp/x",
    )
    assert cfg.spec() == tiny_spec


def test_pool_rejects_zero_workers(tiny_spec):
    with pytest.raises(ServeError):
        ForkingServer(tiny_spec, workers=0)
