"""ModelRegistry: train-once semantics, disk reload, LRU, addressing."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import ModelRegistry
from repro.serve.registry import SERVE_MODELS


def test_first_get_trains_second_hits_warm(tmp_path, tiny_spec):
    registry = ModelRegistry(cache_dir=tmp_path)
    first = registry.get(tiny_spec, "BDT")
    assert registry.stats() == {
        "capacity": 8, "warm": 1, "hits": 0,
        "misses": 1, "disk_loads": 0, "trained": 1,
        "load_failures": 0, "store_failures": 0, "dataset_fallbacks": 0,
    }
    assert registry.last_train_seconds > 0
    second = registry.get(tiny_spec, "BDT")
    assert second is first
    assert registry.stats()["hits"] == 1
    assert registry.stats()["trained"] == 1


def test_fresh_registry_reloads_from_disk(tmp_path, tiny_spec, tiny_records):
    trained = ModelRegistry(cache_dir=tmp_path).get(tiny_spec, "BDT")
    reloaded_registry = ModelRegistry(cache_dir=tmp_path)
    reloaded = reloaded_registry.get(tiny_spec, "BDT")
    stats = reloaded_registry.stats()
    assert stats["trained"] == 0 and stats["disk_loads"] == 1
    # The pickled predictor answers bit-identically to the one trained.
    np.testing.assert_array_equal(
        reloaded.predict_records(tiny_records),
        trained.predict_records(tiny_records),
    )


def test_lru_evicts_least_recently_served(tmp_path, tiny_spec):
    registry = ModelRegistry(cache_dir=tmp_path, capacity=1)
    registry.get(tiny_spec, "BDT")
    registry.get(tiny_spec, "online")
    assert registry.stats()["warm"] == 1
    assert registry.loaded()[0]["model"] == "online"
    # Evicted from warm, but its disk artifact survives.
    registry.get(tiny_spec, "BDT")
    assert registry.stats() == {
        "capacity": 1, "warm": 1, "hits": 0,
        "misses": 3, "disk_loads": 1, "trained": 2,
        "load_failures": 0, "store_failures": 0, "dataset_fallbacks": 0,
    }


def test_concurrent_gets_survive_constant_eviction(tmp_path, tiny_spec,
                                                   tiny_records):
    """8 threads hammer a capacity-1 registry alternating two models.

    Every get lands during an eviction storm (each model's warm slot is
    stolen by the other), so the registry constantly reloads from disk —
    yet every thread must see bit-identical predictions and nothing may
    ever retrain after the first commit.
    """
    registry = ModelRegistry(cache_dir=tmp_path, capacity=1)
    probe = tiny_records[:4]
    baseline = {
        model: registry.get(tiny_spec, model).predict_records(probe)
        for model in ("BDT", "online")
    }
    n_threads = 8
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_threads)

    def hammer(worker: int) -> None:
        barrier.wait()
        try:
            for i in range(12):
                model = ("BDT", "online")[(worker + i) % 2]
                servable = registry.get(tiny_spec, model)
                np.testing.assert_array_equal(
                    servable.predict_records(probe), baseline[model]
                )
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(w,)) for w in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    stats = registry.stats()
    assert stats["warm"] == 1
    assert stats["trained"] == 2  # only the two seeding gets trained
    assert stats["disk_loads"] >= 1 and stats["load_failures"] == 0
    assert stats["hits"] + stats["misses"] >= 2 + n_threads * 12


def test_model_keys_are_stable_and_distinct(tmp_path, tiny_spec):
    registry = ModelRegistry(cache_dir=tmp_path)
    keys = {model: registry.model_key(tiny_spec, model) for model in SERVE_MODELS}
    assert len(set(keys.values())) == len(SERVE_MODELS)
    other = ModelRegistry(cache_dir=tmp_path / "elsewhere")
    assert other.model_key(tiny_spec, "BDT") == keys["BDT"]
    # A different scenario means a different dataset digest, so new keys.
    assert registry.model_key(tiny_spec.replace(seed=99), "BDT") != keys["BDT"]


def test_unknown_model_rejected(tmp_path, tiny_spec):
    registry = ModelRegistry(cache_dir=tmp_path)
    with pytest.raises(ServeError, match="unknown model"):
        registry.get(tiny_spec, "XGBoost")
    with pytest.raises(ServeError, match="unknown model"):
        registry.model_key(tiny_spec, "XGBoost")


def test_capacity_validated(tmp_path):
    with pytest.raises(ServeError):
        ModelRegistry(cache_dir=tmp_path, capacity=0)


def test_online_model_accepts_unseen_users(tmp_path, tiny_spec):
    registry = ModelRegistry(cache_dir=tmp_path)
    servable = registry.get(tiny_spec, "online")
    assert servable.known_users is None
    predictions = servable.predict_records(
        [{"user": "never-seen-before", "nodes": 2, "req_walltime_s": 3600}]
    )
    assert np.isfinite(predictions).all() and predictions[0] > 0


def test_estimator_models_freeze_their_user_vocabulary(tmp_path, tiny_spec):
    servable = ModelRegistry(cache_dir=tmp_path).get(tiny_spec, "BDT")
    assert servable.known_users  # non-empty frozenset
    assert "never-seen-before" not in servable.known_users
