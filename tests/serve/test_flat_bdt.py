"""Array-backed BDT inference: bit-identity with the object tree.

The contract of :class:`repro.serve.flat_bdt.FlatBDT` is absolute: for
every tree the training pipeline can produce and every query batch, the
vectorized level-order descent returns *the same float64 bits* as the
recursive object-tree walk, because it evaluates the identical
``col <= threshold`` / category-membership decisions. These tests pin
that contract with a hypothesis sweep over random trees and batch
sizes, and with the real serving artifact for the tiny scenario.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServeError
from repro.ml.tree import DecisionTreeRegressor
from repro.serve.flat_bdt import FlatBDT, FlatBDTServable


def _fit_random_tree(seed: int, n_rows: int, n_cats: int, leaf: int):
    """A tree like the paper's BDT: categorical col 0 + two numerics."""
    rng = np.random.default_rng(seed)
    X = np.column_stack([
        rng.integers(0, n_cats, size=n_rows).astype(np.float64),
        np.log1p(rng.integers(1, 32, size=n_rows)).astype(np.float64),
        np.log1p(rng.uniform(60.0, 86_400.0, size=n_rows)),
    ])
    y = rng.uniform(50.0, 350.0, size=n_rows)
    tree = DecisionTreeRegressor(min_samples_leaf=leaf)
    tree.fit(X, y, categorical=(0,))
    return tree, rng


# -- property: flat descent == object-tree walk, bit for bit -------------


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n_rows=st.integers(8, 200),
    n_cats=st.integers(2, 12),
    leaf=st.integers(1, 5),
    batch=st.integers(1, 96),
)
def test_flat_matches_tree_bitwise(seed, n_rows, n_cats, leaf, batch):
    tree, rng = _fit_random_tree(seed, n_rows, n_cats, leaf)
    flat = FlatBDT.from_tree(tree)
    # Query rows include category codes the tree never saw (n_cats + 2
    # exceeds the training range) — unseen users must route identically.
    Xq = np.column_stack([
        rng.integers(0, n_cats + 2, size=batch).astype(np.float64),
        np.log1p(rng.integers(1, 64, size=batch)).astype(np.float64),
        np.log1p(rng.uniform(1.0, 172_800.0, size=batch)),
    ])
    expected = tree.predict(Xq)
    got = flat.predict(Xq)
    assert got.dtype == expected.dtype
    np.testing.assert_array_equal(got, expected)


def test_flat_handles_single_leaf_tree():
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(4, 2))
    tree = DecisionTreeRegressor(min_samples_leaf=4).fit(X, np.ones(4))
    flat = FlatBDT.from_tree(tree)
    np.testing.assert_array_equal(flat.predict(X), tree.predict(X))


def test_flat_rejects_unfitted_tree():
    with pytest.raises(Exception):
        FlatBDT.from_tree(DecisionTreeRegressor())


# -- the real serving artifact -------------------------------------------


@pytest.fixture(scope="module")
def fitted(tiny_spec, serve_cache):
    """The exact FittedPredictor the registry trains for the scenario."""
    from repro.analysis.prediction import default_models
    from repro.ml.pipeline import fit_predictor
    from repro.pipeline import build_dataset

    dataset = build_dataset(**tiny_spec.dataset_kwargs(), cache_dir=serve_cache)
    return fit_predictor(
        dataset.jobs, default_models()["BDT"], model_name="BDT"
    )


def test_servable_bit_identical_to_predictor(fitted, tiny_records):
    servable = FlatBDTServable(fitted)
    np.testing.assert_array_equal(
        servable.predict_records(tiny_records),
        fitted.predict_records(tiny_records),
    )


@settings(max_examples=20, deadline=None)
@given(batch=st.integers(1, 32), seed=st.integers(0, 10_000))
def test_servable_identity_over_random_batches(fitted, tiny_records, batch, seed):
    rng = np.random.default_rng(seed)
    picks = [tiny_records[i] for i in rng.integers(0, len(tiny_records), batch)]
    servable = FlatBDTServable(fitted)
    np.testing.assert_array_equal(
        servable.predict_records(picks), fitted.predict_records(picks)
    )


def test_servable_requires_a_tree_model(fitted, tiny_spec, serve_cache):
    from repro.analysis.prediction import default_models
    from repro.ml.pipeline import fit_predictor
    from repro.pipeline import build_dataset

    dataset = build_dataset(**tiny_spec.dataset_kwargs(), cache_dir=serve_cache)
    knn = fit_predictor(dataset.jobs, default_models()["KNN"], model_name="KNN")
    with pytest.raises(ServeError):
        FlatBDTServable(knn)


def test_registry_serves_flat_bdt(tiny_spec, serve_cache):
    """The registry transparently specializes BDT to the flat walker."""
    from repro.serve.registry import ModelRegistry

    registry = ModelRegistry(cache_dir=serve_cache)
    servable = registry.get(tiny_spec, "BDT")
    assert isinstance(servable, FlatBDTServable)
