"""Edge cases for the lifecycle's two watchdogs: drift windows, torn tails.

``DriftDetector`` folds exact window means out of metric snapshot
deltas; the tests pin its boundary behavior — short windows, the
first-window reference, zero-error references, and the exact ``>=`` /
``>`` threshold edges — on a *private* registry so nothing leaks into
the process-wide one. ``LineageJournal`` must survive torn tails: a
partially written record (no trailing newline yet) is held, never
counted as damage, and folded in once the rest of the bytes land.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ServeError
from repro.obs.metrics import MetricsRegistry
from repro.serve.lifecycle import (
    ERROR_BUCKETS,
    FEATURE_BUCKETS,
    DriftDetector,
    LineageJournal,
)

SCENARIO, MODEL = "scn", "online"


@pytest.fixture()
def registry():
    return MetricsRegistry()


@pytest.fixture()
def detector(registry):
    return DriftDetector(
        SCENARIO,
        MODEL,
        metrics=registry,
        min_window=4,
        error_floor=0.5,
        error_ratio=2.0,
        feature_tolerance=0.25,
        features=("nodes",),
    )


def _feed(registry, errors=(), nodes=()):
    """Observe feedback samples exactly as the lifecycle manager would."""
    err = registry.histogram(
        "repro_feedback_abs_error", "test", buckets=ERROR_BUCKETS,
        labelnames=("scenario", "model"),
    )
    for value in errors:
        err.observe(value, scenario=SCENARIO, model=MODEL)
    feat = registry.histogram(
        "repro_feedback_feature", "test", buckets=FEATURE_BUCKETS,
        labelnames=("scenario", "feature"),
    )
    for value in nodes:
        feat.observe(value, scenario=SCENARIO, feature="nodes")


def _gauge(registry):
    return registry.snapshot()["repro_drift_active"][(SCENARIO, MODEL)]


# -- window boundaries ---------------------------------------------------


def test_empty_window_is_not_a_window(detector):
    assert detector.check() is None
    assert detector.latched is False


def test_window_completes_exactly_at_min_window(detector, registry):
    _feed(registry, errors=[0.25] * 3)
    assert detector.check() is None  # 3 < min_window=4: still open
    _feed(registry, errors=[0.25])
    # 4th sample completes the window — which becomes the silent
    # reference, not a drift verdict.
    assert detector.check() is None
    assert detector.latched is False and _gauge(registry) == 0
    # An identical follow-up window matches the reference: no drift.
    _feed(registry, errors=[0.25] * 4)
    assert detector.check() is None


def test_min_window_must_be_positive(registry):
    with pytest.raises(ServeError, match="min_window"):
        DriftDetector(SCENARIO, MODEL, metrics=registry, min_window=0)


# -- error rule edges ----------------------------------------------------


def test_error_floor_fires_on_exact_equality(detector, registry):
    _feed(registry, errors=[0.25] * 4)
    detector.check()  # reference: mean 0.25
    # Window mean exactly error_floor=0.5: the rule is >=, so it fires.
    _feed(registry, errors=[0.5] * 4)
    event = detector.check()
    assert event is not None and "error" in event["rules"]
    assert event["window"]["error_mean"] == 0.5
    assert event["reference"]["error_mean"] == 0.25
    assert detector.latched is True and _gauge(registry) == 1


def test_error_ratio_fires_on_exact_multiple(registry):
    detector = DriftDetector(
        SCENARIO, MODEL, metrics=registry, min_window=4,
        error_floor=10.0, error_ratio=2.0, features=(),
    )
    _feed(registry, errors=[0.125] * 4)
    detector.check()  # reference: mean 0.125
    _feed(registry, errors=[0.25] * 4)  # exactly 2.0x the reference
    event = detector.check()
    assert event is not None and event["rules"] == ["error"]


def test_zero_error_reference_cannot_trip_the_ratio_rule(registry):
    """A perfect reference makes any ratio infinite; the floor still rules."""
    detector = DriftDetector(
        SCENARIO, MODEL, metrics=registry, min_window=4,
        error_floor=0.5, error_ratio=1.5, features=(),
    )
    _feed(registry, errors=[0.0] * 4)
    detector.check()  # reference: mean 0.0
    _feed(registry, errors=[0.25] * 4)  # any nonzero is "infinitely" worse
    assert detector.check() is None  # ...but stays under the floor
    _feed(registry, errors=[0.5] * 4)
    event = detector.check()
    assert event is not None and event["rules"] == ["error"]


# -- feature rule edges --------------------------------------------------


def test_feature_tolerance_is_strictly_greater_than(detector, registry):
    _feed(registry, errors=[0.25] * 4, nodes=[4.0] * 4)
    detector.check()  # reference: nodes mean 4.0
    # |5 - 4| == tolerance * base exactly (1.0): strict >, no fire.
    _feed(registry, errors=[0.25] * 4, nodes=[5.0] * 4)
    assert detector.check() is None
    # |5.5 - 4| > 1.0: fires, and names the feature.
    _feed(registry, errors=[0.25] * 4, nodes=[5.5] * 4)
    event = detector.check()
    assert event is not None and event["rules"] == ["feature:nodes"]


def test_zero_feature_reference_never_fires(detector, registry):
    # No feature samples at all: the reference base is 0.0 and the
    # guard keeps the rule quiet no matter what later windows show.
    _feed(registry, errors=[0.25] * 4)
    detector.check()
    _feed(registry, errors=[0.25] * 4, nodes=[100.0] * 4)
    assert detector.check() is None


# -- latch / reset -------------------------------------------------------


def test_reset_clears_latch_and_starts_a_fresh_reference(registry):
    detector = DriftDetector(
        SCENARIO, MODEL, metrics=registry, min_window=4,
        error_floor=10.0, error_ratio=2.0, features=(),
    )
    _feed(registry, errors=[0.125] * 4)
    detector.check()  # reference: mean 0.125
    _feed(registry, errors=[0.25] * 4)
    assert detector.check() is not None and detector.latched
    detector.reset()
    assert detector.latched is False and _gauge(registry) == 0
    # Post-reset the old 0.125 reference is gone: the first window is
    # the new baseline (silent), and a second identical window sits at
    # ratio 1.0 — against the *old* reference it would still be 2.0x.
    _feed(registry, errors=[0.25] * 4)
    assert detector.check() is None
    _feed(registry, errors=[0.25] * 4)
    assert detector.check() is None


# -- journal torn-tail recovery ------------------------------------------


def _record(**fields) -> bytes:
    return (json.dumps(fields, sort_keys=True) + "\n").encode()


def test_torn_tail_is_held_not_counted_as_damage(tmp_path):
    journal = LineageJournal(tmp_path / "j.jsonl", fsync=False)
    journal.append("register", "m", version=2, trained_at_key="k")
    line = _record(event="promote", model="m", version=2, from_version=1)
    # A torn write: the first half of the record lands without its
    # newline. The reader must hold it, apply nothing, damage nothing.
    with journal.path.open("ab") as fh:
        fh.write(line[: len(line) // 2])
    assert journal.refresh(force=True) == 0
    assert journal.damaged_lines == 0
    assert journal.active_version("m") == 1
    # The rest of the bytes land: the held tail completes and applies.
    with journal.path.open("ab") as fh:
        fh.write(line[len(line) // 2:])
    assert journal.refresh(force=True) == 1
    assert journal.active_version("m") == 2
    assert journal.damaged_lines == 0


def test_multi_record_partial_write_applies_whole_lines_only(tmp_path):
    journal = LineageJournal(tmp_path / "j.jsonl", fsync=False)
    full = (
        _record(event="register", model="m", version=2, trained_at_key="a")
        + _record(event="register", model="m", version=3, trained_at_key="b")
    )
    torn = _record(event="promote", model="m", version=3, from_version=1)
    with journal.path.open("ab") as fh:
        fh.write(full + torn[:-10])  # two whole lines + a torn third
    assert journal.refresh(force=True) == 2
    assert journal.registered_versions("m") == {2: "a", 3: "b"}
    assert journal.active_version("m") == 1  # the torn promote is pending
    with journal.path.open("ab") as fh:
        fh.write(torn[-10:])
    assert journal.refresh(force=True) == 1
    assert journal.active_version("m") == 3


def test_garbage_lines_are_skipped_and_counted(tmp_path):
    journal = LineageJournal(tmp_path / "j.jsonl", fsync=False)
    with journal.path.open("ab") as fh:
        fh.write(b"{not json at all\n")
        fh.write(_record(event="promote", model="m", version=2))
        fh.write(b'["an array, not an event object"]\n')
    assert journal.refresh(force=True) == 1
    assert journal.damaged_lines == 2
    assert journal.active_version("m") == 2
    # Appends keep working after damage, and history only holds the
    # records that parsed.
    journal.append("rollback", "m", version=1, from_version=2)
    assert journal.active_version("m") == 1
    assert [e["event"] for e in journal.history("m")] == [
        "promote", "rollback",
    ]


def test_external_truncation_resets_and_replays(tmp_path):
    journal = LineageJournal(tmp_path / "j.jsonl", fsync=False)
    journal.append("register", "m", version=2, trained_at_key="k")
    journal.append("promote", "m", version=2, from_version=1)
    assert journal.active_version("m") == 2
    # An external actor rewrites the journal shorter (e.g. a manual
    # repair): the reader notices the shrink and replays from scratch.
    journal.path.write_bytes(_record(event="promote", model="m", version=5))
    journal.refresh(force=True)
    assert journal.active_version("m") == 5
    assert journal.damaged_lines == 0


def test_second_reader_sees_interleaved_whole_lines(tmp_path):
    writer = LineageJournal(tmp_path / "j.jsonl", fsync=False)
    reader = LineageJournal(tmp_path / "j.jsonl", fsync=False)
    writer.append("register", "m", version=2, trained_at_key="k")
    writer.append("promote", "m", version=2, from_version=1)
    # Past the poll throttle, a forced refresh folds both lines in.
    assert reader.refresh(force=True) == 2
    assert reader.active_version("m") == 2
    assert [e["event"] for e in reader.history("m")] == [
        "register", "promote",
    ]
