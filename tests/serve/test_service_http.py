"""PredictionService + HTTP front-end: bit-identity, concurrency, errors.

The acceptance bar for the serving layer is that micro-batched
predictions — in-process or over HTTP, alone or under concurrent load —
are *bit-identical* to calling the fitted predictor directly.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.errors import ScenarioError, ServeError
from repro.serve import PredictionService
from tests.helpers.served import ServedSystem


@pytest.fixture(scope="module")
def service(tiny_spec, serve_cache):
    svc = PredictionService(tiny_spec, cache_dir=serve_cache, max_wait_s=0.001)
    svc.warm(("BDT",))
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def direct(service, tiny_spec, tiny_records):
    """Ground truth: the fitted predictor called without any batching."""
    servable = service.registry.get(tiny_spec, "BDT")
    return servable.predict_records(tiny_records)


@pytest.fixture(scope="module")
def server(service):
    # The shared harness fronts the module-scoped service; stop() tears
    # down only the HTTP server, leaving the service to its own fixture.
    with ServedSystem(service=service) as system:
        yield system


def _http(server, method, path, payload=None):
    status, _, body = server.request(method, path, payload=payload)
    return status, body


# -- in-process ----------------------------------------------------------


def test_batched_predictions_bit_identical_to_direct(service, tiny_records, direct):
    batched = service.predict(tiny_records, model="BDT")
    np.testing.assert_array_equal(batched, direct)


def test_concurrent_clients_get_bit_identical_predictions(
    service, tiny_records, direct
):
    """8 threads of single-job requests: coalesced, still exact."""
    n_threads = 8
    out = np.full(len(tiny_records), np.nan)
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_threads)

    def client(worker: int) -> None:
        barrier.wait()
        try:
            for i in range(worker, len(tiny_records), n_threads):
                out[i] = service.predict([tiny_records[i]], model="BDT")[0]
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(w,)) for w in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    np.testing.assert_array_equal(out, direct)
    stats = service.stats()
    total = sum(s["n_requests"] for s in stats["batchers"].values())
    assert total >= len(tiny_records)


def test_unknown_user_fails_alone_without_poisoning_the_batcher(
    service, tiny_records
):
    bad = {"user": "not-a-user", "nodes": 2, "req_walltime_s": 600}
    with pytest.raises(ServeError, match="unknown user"):
        service.predict([bad], model="BDT")
    # The online model backs off instead of rejecting.
    assert service.predict([bad], model="online")[0] > 0
    # And the BDT batcher still serves good requests.
    assert np.isfinite(service.predict(tiny_records[:2], model="BDT")).all()


def test_malformed_records_rejected(service):
    with pytest.raises(ServeError, match="lacks fields"):
        service.predict([{"user": "u"}])
    with pytest.raises(ServeError, match="nodes must be >= 1"):
        service.predict([{"user": "u", "nodes": 0, "req_walltime_s": 60}])
    with pytest.raises(ServeError, match="must be positive"):
        service.predict([{"user": "u", "nodes": 1, "req_walltime_s": 0}])
    with pytest.raises(ServeError, match="must be numeric"):
        service.predict([{"user": "u", "nodes": "many", "req_walltime_s": 60}])
    with pytest.raises(ServeError, match="at least one record"):
        service.predict([])


def test_scenario_overlay_changes_only_named_fields(service, tiny_spec):
    spec = service.resolve_scenario({"max_traces": 7})
    assert spec.max_traces == 7
    assert spec.replace(max_traces=tiny_spec.max_traces) == tiny_spec
    # Legacy horizon_s overlays convert, replacing the base horizon.
    assert service.resolve_scenario({"horizon_s": 86400}).horizon_days == 1.0
    with pytest.raises(ScenarioError, match="unknown scenario fields"):
        service.resolve_scenario({"nodes": 12})


def test_service_stats_shape(service, tiny_spec):
    stats = service.stats()
    assert stats["scenario"] == tiny_spec.to_dict()
    assert stats["dataset_digest"] == tiny_spec.dataset_digest
    assert stats["latency"]["count"] > 0
    assert stats["registry"]["warm"] >= 1
    assert stats["batching"]["max_batch"] == 64


# -- HTTP ----------------------------------------------------------------


def test_http_predict_round_trip_is_bit_identical(server, tiny_records, direct):
    status, answer = _http(
        server, "POST", "/predict", {"model": "BDT", "jobs": tiny_records}
    )
    assert status == 200
    assert answer["n"] == len(tiny_records)
    assert answer["model"] == "BDT"
    assert answer["latency_ms"] >= 0
    # JSON float repr round-trips doubles exactly: still bit-identical.
    np.testing.assert_array_equal(np.asarray(answer["predictions"]), direct)


def test_http_single_job_form(server, tiny_records, direct):
    status, answer = _http(server, "POST", "/predict", {"job": tiny_records[0]})
    assert status == 200
    assert answer["predictions"] == [float(direct[0])]


def test_http_healthz(server):
    status, health = _http(server, "GET", "/healthz")
    assert status == 200
    assert health["status"] == "ok"
    assert health["uptime_s"] >= 0
    assert health["requests"] == health["latency"]["count"] > 0


def test_http_models_endpoint(server, tiny_spec):
    status, stats = _http(server, "GET", "/models")
    assert status == 200
    assert stats["dataset_digest"] == tiny_spec.dataset_digest
    assert any(m["model"] == "BDT" for m in stats["models"])
    assert stats["batchers"]


def test_http_error_mapping(server, tiny_records):
    assert _http(server, "GET", "/nope")[0] == 404
    assert _http(server, "POST", "/nope", {})[0] == 404
    # Caller mistakes are 400s with a JSON error body.
    for payload in (
        {},  # no jobs
        {"jobs": []},
        {"jobs": "not-a-list"},
        {"model": "XGBoost", "jobs": tiny_records[:1]},
        {"jobs": [{"user": "u"}]},
        {"scenario": {"bogus": 1}, "jobs": tiny_records[:1]},
        {"jobs": [{"user": "not-a-user", "nodes": 1, "req_walltime_s": 60}]},
    ):
        status, body = _http(server, "POST", "/predict", payload)
        assert status == 400, payload
        assert "error" in body

    status, _, body = server.request("POST", "/predict", raw_body=b"{not json")
    assert status == 400
    assert "invalid JSON" in body["error"]


# -- /predict/bulk (NDJSON) ----------------------------------------------


def _bulk(server, body: bytes, path="/predict/bulk?model=BDT"):
    return server.request(
        "POST", path, raw_body=body,
        headers={"Content-Type": "application/x-ndjson"}, raw_response=True,
    )


def test_http_bulk_round_trip_is_bit_identical(server, tiny_records, direct):
    body = b"\n".join(json.dumps(r).encode() for r in tiny_records)
    status, headers, data = _bulk(server, body)
    assert status == 200
    assert headers["Content-Type"] == "application/x-ndjson"
    assert headers["X-N"] == str(len(tiny_records))
    assert headers["X-Model"] == "BDT"
    # One repr()-float per line: parsing them back restores exact bits.
    values = np.asarray([float(line) for line in data.split()])
    np.testing.assert_array_equal(values, direct)


def test_http_bulk_tolerates_blank_lines(server, tiny_records, direct):
    body = b"\n\n" + json.dumps(tiny_records[0]).encode() + b"\n\n"
    status, headers, data = _bulk(server, body)
    assert status == 200
    assert headers["X-N"] == "1"
    assert float(data.split()[0]) == float(direct[0])


def test_http_bulk_scenario_overlay_via_query(server, tiny_records):
    overlay = json.dumps({"seed": 4})
    from urllib.parse import quote

    body = json.dumps(tiny_records[0]).encode()
    status, _, _ = _bulk(
        server, body, path=f"/predict/bulk?model=BDT&scenario={quote(overlay)}"
    )
    assert status == 200


def test_http_bulk_error_mapping(server, tiny_records):
    # Empty body, malformed line, non-object line: all caller mistakes.
    for body in (b"", b"{not json", b'["a-list-not-an-object"]'):
        status, _, data = _bulk(server, body)
        assert status == 400, body
        assert "error" in json.loads(data)
    # The error names the offending line.
    status, _, data = _bulk(
        server, json.dumps(tiny_records[0]).encode() + b"\n{oops"
    )
    assert status == 400
    assert "line 2" in json.loads(data)["error"]
    # Unknown model maps exactly like /predict.
    body = json.dumps(tiny_records[0]).encode()
    status, _, _ = _bulk(server, body, path="/predict/bulk?model=XGBoost")
    assert status == 400


def test_closed_service_refuses_predicts(tiny_spec, serve_cache):
    svc = PredictionService(tiny_spec, cache_dir=serve_cache)
    record = {"user": "u", "nodes": 1, "req_walltime_s": 60}
    svc.close()
    svc.close()  # idempotent
    with pytest.raises(ServeError):
        svc.predict([record], model="online")


# -- /metrics ------------------------------------------------------------


def _scrape(server) -> tuple[str, str]:
    """GET /metrics raw; returns (content_type, body text)."""
    status, headers, body = server.get("/metrics", raw_response=True)
    assert status == 200
    return headers["Content-Type"], body.decode("utf-8")


def test_metrics_endpoint_serves_valid_exposition(server, tiny_records):
    from tests.obs.test_metrics import parse_exposition

    # Ensure at least one prediction has flowed through the service.
    status, _ = _http(server, "POST", "/predict",
                      {"model": "BDT", "jobs": tiny_records[:2]})
    assert status == 200

    content_type, body = _scrape(server)
    assert content_type.startswith("text/plain")
    assert "version=0.0.4" in content_type
    samples = parse_exposition(body)

    # The serving metric families the issue's acceptance bar names.
    assert samples["repro_requests_total"] >= 1
    assert samples['repro_predict_outcomes_total{outcome="ok"}'] >= 1
    assert any(k.startswith("repro_request_latency_seconds_bucket") for k in samples)
    assert any(k.startswith("repro_batch_size_bucket") for k in samples)
    assert any(k.startswith("repro_model_registry_lookups_total") for k in samples)
    # Histogram invariant: the +Inf bucket equals the count.
    assert (samples['repro_request_latency_seconds_bucket{le="+Inf"}']
            == samples["repro_request_latency_seconds_count"])


def test_metrics_counters_are_monotone_across_requests(server, tiny_records):
    from tests.obs.test_metrics import parse_exposition

    before = parse_exposition(_scrape(server)[1])
    for _ in range(3):
        status, _ = _http(server, "POST", "/predict",
                          {"model": "BDT", "jobs": tiny_records[:1]})
        assert status == 200
    after = parse_exposition(_scrape(server)[1])

    assert after["repro_requests_total"] == before["repro_requests_total"] + 3
    assert (after['repro_predict_outcomes_total{outcome="ok"}']
            == before['repro_predict_outcomes_total{outcome="ok"}'] + 3)
    # Every counter/bucket sample is non-decreasing between scrapes.
    for key, value in before.items():
        if "_total" in key or "_bucket" in key or "_count" in key:
            assert after.get(key, 0.0) >= value, key
    # The scrape itself is accounted.
    assert (after['repro_http_requests_total{endpoint="/metrics"}']
            >= before['repro_http_requests_total{endpoint="/metrics"}'] + 1)
