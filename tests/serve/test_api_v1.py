"""The /v1 HTTP surface, deprecation shims, and the canonical API pair.

Covers the api_redesign contract: one ``PredictRequest`` in /
``PredictResponse`` out pair behind every entry point (with
``as_scenario``-style coercion shims), a versioned ``/v1`` HTTP
namespace whose legacy paths answer through instrumented deprecation
shims, and the lifecycle admin endpoints.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import PredictRequest, PredictResponse, as_predict_request
from tests.helpers.served import ServedSystem

RECORD = {"user": "user001", "nodes": 2, "req_walltime_s": 600}


# -- request coercion shims ----------------------------------------------


def test_as_predict_request_passthrough_and_replace():
    req = PredictRequest(records=(RECORD,), model="online")
    assert as_predict_request(req) is req
    replaced = as_predict_request(req, model="KNN")
    assert replaced.model == "KNN" and replaced.records == req.records


def test_as_predict_request_accepts_bare_record_sequences():
    req = as_predict_request([RECORD, RECORD], model="online", timeout=5.0)
    assert len(req) == 2
    assert req.model == "online" and req.timeout == 5.0
    assert req.mode == "batched" and req.version is None


def test_as_predict_request_accepts_legacy_jobs_mapping():
    req = as_predict_request({"jobs": [RECORD], "model": "online"})
    assert req.records == (RECORD,)


def test_as_predict_request_rejects_unknown_fields():
    with pytest.raises(ServeError, match="unknown predict-request fields"):
        as_predict_request({"records": [RECORD], "modle": "BDT"})
    with pytest.raises(ServeError, match="needs records"):
        as_predict_request({})
    with pytest.raises(ServeError, match="unknown predict mode"):
        PredictRequest(records=(RECORD,), mode="streaming")


def test_predict_response_mapping_shim():
    resp = PredictResponse(
        predictions=np.array([1.0]), degraded=False, served_by="online",
        model="online", version=3, latency_s=0.01, extras={"n": 1},
    )
    # Old call sites read predict_detailed() dicts; the shim keeps them.
    assert resp["served_by"] == "online" and resp["n"] == 1
    assert resp.get("missing") is None
    assert "degraded" in resp and set(resp.keys()) >= {"predictions", "version"}
    assert dict(resp.to_dict())["version"] == 3
    with pytest.raises(KeyError):
        resp["nope"]


# -- the /v1 surface over HTTP -------------------------------------------


@pytest.fixture(scope="module")
def v1_server(tiny_spec, serve_cache, tmp_path_factory):
    with ServedSystem(
        tiny_spec,
        cache_dir=serve_cache,
        lifecycle_dir=tmp_path_factory.mktemp("v1-lifecycle"),
        warm=("online",),
        max_wait_ms=1.0,
    ) as system:
        yield system


def _request(server, method, path, payload=None):
    return server.request(method, path, payload=payload, raw_response=True)


def _json(server, method, path, payload=None):
    return server.request(method, path, payload=payload)


def test_v1_healthz_and_legacy_shim(v1_server):
    status, headers, body = _json(v1_server, "GET", "/v1/healthz")
    assert status == 200 and body["status"] == "ok"
    assert "Deprecation" not in headers

    status, headers, legacy = _json(v1_server, "GET", "/healthz")
    assert status == 200 and legacy["status"] == "ok"
    assert headers["Deprecation"] == "true"
    assert 'rel="successor-version"' in headers["Link"]
    assert "/v1/healthz" in headers["Link"]


def test_legacy_requests_tick_the_deprecation_counter(v1_server):
    _json(v1_server, "GET", "/healthz")
    _, _, raw = _request(v1_server, "GET", "/v1/metrics")
    exposition = raw.decode()
    assert "repro_http_deprecated_requests_total" in exposition
    line = next(
        l for l in exposition.splitlines()
        if l.startswith("repro_http_deprecated_requests_total")
        and 'endpoint="/healthz"' in l
    )
    assert float(line.rsplit(" ", 1)[1]) >= 1


def test_v1_models_is_the_lineage_view(v1_server):
    status, _, body = _json(v1_server, "GET", "/v1/models")
    assert status == 200
    assert body["dataset_digest"]
    rows = {row["model"]: row for row in body["models"]}
    assert set(rows) >= {"BDT", "KNN", "FLDA", "online"}
    online = rows["online"]
    assert online["active"] == 1 and 1 in online["versions"]
    assert {"candidate", "shadow", "drift", "trained_at_key"} <= set(online)

    # The legacy /models payload keeps its pre-/v1 stats shape.
    status, headers, legacy = _json(v1_server, "GET", "/models")
    assert status == 200 and headers["Deprecation"] == "true"
    assert "batchers" in legacy and "registry" in legacy


def test_v1_predict_carries_the_lineage_version(v1_server, tiny_records):
    payload = {"model": "online", "jobs": tiny_records[:4]}
    status, _, body = _json(v1_server, "POST", "/v1/predict", payload)
    assert status == 200
    assert body["version"] == 1 and len(body["predictions"]) == 4

    status, _, pinned = _json(
        v1_server, "POST", "/v1/predict", {**payload, "version": 1}
    )
    assert status == 200 and pinned["predictions"] == body["predictions"]

    status, _, err = _json(
        v1_server, "POST", "/v1/predict", {**payload, "version": 99}
    )
    assert status == 400 and "no stored artifact" in err["error"]


def test_v1_bulk_headers(v1_server, tiny_records):
    body = "\n".join(json.dumps(r) for r in tiny_records[:3]).encode()
    status, headers, raw = v1_server.request(
        "POST", "/v1/predict/bulk?model=online", raw_body=body,
        headers={"Content-Type": "application/x-ndjson"}, raw_response=True,
    )
    lines = raw.decode().splitlines()
    assert status == 200 and len(lines) == 3
    assert headers["X-Version"] == "1" and "Deprecation" not in headers


def test_v1_feedback_and_admin_round_trip(v1_server, feedback_records):
    manager = v1_server.service.lifecycle
    status, _, out = _json(v1_server, "POST", "/v1/feedback",
                           {"jobs": feedback_records[:8]})
    assert status == 200 and out["accepted"] == 8

    status, _, err = _json(v1_server, "POST", "/v1/feedback", {"jobs": []})
    assert status == 400 and "error" in err

    version = manager.create_candidate("online", who="test", why="api")
    status, _, out = _json(
        v1_server, "POST", "/v1/admin/promote",
        {"model": "online", "version": version, "who": "test", "why": "api"},
    )
    assert status == 200 and out["active"] == version

    status, _, hist = _json(v1_server, "GET", "/v1/admin/history?model=online")
    assert status == 200
    events = [e["event"] for e in hist["events"]]
    assert events[-2:] == ["register", "promote"]
    assert hist["events"][-1]["who"] == "test"

    status, _, out = _json(v1_server, "POST", "/v1/admin/rollback",
                           {"model": "online", "who": "test"})
    assert status == 200 and out["active"] == 1

    status, _, models = _json(v1_server, "GET", "/v1/models")
    online = next(r for r in models["models"] if r["model"] == "online")
    assert online["active"] == 1


def test_admin_promote_validation(v1_server):
    status, _, err = _json(v1_server, "POST", "/v1/admin/promote",
                           {"model": "online"})
    assert status == 400 and "version" in err["error"]
    status, _, err = _json(v1_server, "POST", "/v1/admin/promote",
                           {"model": "online", "version": 1})
    assert status == 400  # already active


def test_lifecycle_endpoints_disabled_without_lifecycle(
    tiny_spec, serve_cache
):
    with ServedSystem(tiny_spec, cache_dir=serve_cache) as server:
        status, _, err = _json(server, "POST", "/v1/feedback",
                               {"jobs": [dict(RECORD, power_w=100.0)]})
        assert status == 400 and "lifecycle" in err["error"]
        status, _, err = _json(server, "POST", "/v1/admin/promote",
                               {"model": "online", "version": 2})
        assert status == 400 and "lifecycle" in err["error"]
        status, _, err = _json(server, "GET", "/v1/admin/history")
        assert status == 400 and "lifecycle" in err["error"]
