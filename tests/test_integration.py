"""End-to-end integration and calibration-band tests.

The calibration tests assert the *shape* of the paper's findings on a
scaled-down pipeline with a fixed seed — loose bands, qualitative
directions. The full-size bands are exercised by the benchmark harness
(`benchmarks/`), not here, to keep the suite fast.
"""

import numpy as np

import repro
from repro import analysis


class TestPipelineShape:
    def test_dataset_sizes(self, emmy_small, meggie_small):
        assert emmy_small.num_jobs > 200
        assert meggie_small.num_jobs > 100
        assert len(emmy_small.traces) > 10

    def test_rq1_rq2_stranded_power(self, emmy_small):
        """High system utilization, yet a large stranded-power gap."""
        util = analysis.system_utilization(emmy_small).mean
        power = analysis.power_utilization(emmy_small).mean
        assert util > 0.6
        assert power < util
        assert (util - power) > 0.10

    def test_rq3_power_below_tdp(self, emmy_small, meggie_small):
        for ds in (emmy_small, meggie_small):
            dist = analysis.per_node_power_distribution(ds)
            assert 0.45 < dist.mean_tdp_fraction < 0.85
            assert 0.1 < dist.std_over_mean < 0.45

    def test_rq4_cross_system_levels(self, emmy_small, meggie_small):
        comp = analysis.app_power_comparison(
            {"emmy": emmy_small, "meggie": meggie_small}
        )
        assert np.all(comp.mean_watts[:, 0] > comp.mean_watts[:, 1])

    def test_table2_positive_correlations(self, emmy_small):
        corr = analysis.feature_power_correlations(emmy_small)
        assert corr["job_length"].statistic > 0.05
        assert corr["job_size"].statistic > -0.05

    def test_rq5_temporal_low_spatial_high(self, emmy_small):
        t = analysis.temporal_summary(emmy_small)
        s = analysis.spatial_summary(emmy_small)
        # Temporal variance limited...
        assert t.mean_temporal_cov < 0.25
        assert t.frac_jobs_never_above > 0.3
        # ...but spatial variance substantial.
        assert s.mean_spread_fraction > 0.05

    def test_rq6_concentration(self, emmy_small):
        c = analysis.concentration_analysis(emmy_small)
        assert c.node_hours_share > 0.6
        assert c.energy_share > 0.6
        assert c.top_set_overlap > 0.5

    def test_rq7_rq8_variability_collapse(self, emmy_small):
        user_cov = analysis.user_power_variability(emmy_small).mean_cov
        cluster_cov = analysis.cluster_variability(emmy_small, "nodes").mean_cov
        assert cluster_cov < 0.6 * user_cov

    def test_rq9_prediction_quality(self, emmy_small):
        results = analysis.run_prediction(emmy_small, n_repeats=2, seed=1)
        bdt = results["BDT"].summary
        assert bdt.frac_below_10pct > 0.5
        assert (
            bdt.frac_below_10pct >= results["FLDA"].summary.frac_below_10pct
        )

    def test_full_determinism_across_layers(self):
        a = repro.generate_dataset(
            "meggie", seed=77, num_nodes=24, num_users=8, horizon_s=2 * 86400,
            max_traces=3,
        )
        b = repro.generate_dataset(
            "meggie", seed=77, num_nodes=24, num_users=8, horizon_s=2 * 86400,
            max_traces=3,
        )
        np.testing.assert_array_equal(a.jobs["energy_j"], b.jobs["energy_j"])
        np.testing.assert_array_equal(a.total_power_watts(), b.total_power_watts())
        for k in a.traces:
            np.testing.assert_array_equal(a.traces[k].matrix, b.traces[k].matrix)


class TestCrossSystemContrasts:
    """Per-system parameterizations must preserve the paper's contrasts."""

    def test_emmy_draws_higher_fraction(self, emmy_small, meggie_small):
        emmy = analysis.per_node_power_distribution(emmy_small)
        meggie = analysis.per_node_power_distribution(meggie_small)
        assert emmy.mean_tdp_fraction > meggie.mean_tdp_fraction

    def test_emmy_wider_spread(self, emmy_small, meggie_small):
        emmy = analysis.per_node_power_distribution(emmy_small)
        meggie = analysis.per_node_power_distribution(meggie_small)
        assert emmy.std_over_mean > meggie.std_over_mean * 0.8

    def test_meggie_size_coupling_stronger(self, emmy_small, meggie_small):
        emmy_corr = analysis.feature_power_correlations(emmy_small)
        meggie_corr = analysis.feature_power_correlations(meggie_small)
        assert (
            meggie_corr["job_size"].statistic
            > emmy_corr["job_size"].statistic - 0.15
        )
