"""CLI smoke tests (argument parsing plus end-to-end subcommands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--system", "meggie", "--out", "x.csv", "--num-nodes", "16"]
        )
        assert args.system == "meggie"
        assert args.num_nodes == 16

    def test_system_choices_track_the_cluster_registry(self):
        """The hardcoded (import-light) CLI choices must never drift
        from repro.cluster.known_systems()."""
        from repro.cli import _SYSTEM_CHOICES
        from repro.cluster import known_systems

        assert list(_SYSTEM_CHOICES) == known_systems()

    def test_gpu_systems_are_accepted(self):
        args = build_parser().parse_args(
            ["generate", "--system", "alex", "--out", "x.npz"]
        )
        assert args.system == "alex"


SCALE = [
    "--num-nodes", "16", "--num-users", "8",
    "--horizon-days", "2", "--max-traces", "5", "--seed", "1",
]


class TestCommands:
    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "emmy" in out and "meggie" in out and "560" in out

    def test_systems_list(self, capsys):
        assert main(["systems", "list"]) == 0
        out = capsys.readouterr().out
        assert "alex" in out and "woody" in out
        assert "ml" in out and "mixed" in out
        assert "656" in out  # alex: 82 nodes x 8 boards

    def test_systems_list_json(self, capsys):
        import json

        assert main(["systems", "list", "--json"]) == 0
        catalog = {e["system"]: e for e in json.loads(capsys.readouterr().out)}
        assert catalog["woody"]["gpu_nodes"] == 32
        assert catalog["woody"]["gpus_per_node"] == 4
        assert catalog["emmy"]["total_gpus"] == 0

    def test_generate_csv(self, tmp_path, capsys):
        out = tmp_path / "jobs.csv"
        assert main(["generate", "--out", str(out), *SCALE]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_generate_npz(self, tmp_path):
        out = tmp_path / "jobs.npz"
        assert main(["generate", "--out", str(out), *SCALE]) == 0
        from repro.telemetry.schema import load_jobs_npz

        assert len(load_jobs_npz(out)) > 0

    def test_generate_bad_suffix(self, tmp_path, capsys):
        assert main(["generate", "--out", str(tmp_path / "jobs.txt"), *SCALE]) == 2

    def test_analyze(self, capsys):
        assert main(["analyze", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "power utilization" in out
        assert "Spearman" in out

    def test_predict(self, capsys):
        assert main(["predict", "--repeats", "2", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "BDT" in out and "FLDA" in out

    def test_report(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "--out", str(out), "--no-prediction", *SCALE]) == 0
        text = out.read_text()
        assert text.startswith("# Power characterization")
        assert "## Users" in text

    def test_figures(self, tmp_path, capsys):
        out = tmp_path / "figs"
        assert main(["figures", "--out-dir", str(out), "--repeats", "2", *SCALE]) == 0
        assert len(list(out.glob("*.svg"))) >= 10


class TestPipelineCommands:
    def test_run_status_clean(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]

        assert main(["pipeline", "run", *SCALE, *cache]) == 0
        out = capsys.readouterr().out
        assert "emmy/seed1" in out and "dataset" in out

        # Warm rerun reports every stage as a cache hit.
        assert main(["pipeline", "run", *SCALE, *cache]) == 0
        assert "hit" in capsys.readouterr().out

        assert main(["pipeline", "status", *cache]) == 0
        out = capsys.readouterr().out
        assert "workload" in out and "dataset" in out
        assert "[emmy]" in out  # each entry names its system

        # Targeted clean: only the matching stage goes away.
        assert main(["pipeline", "clean", "--stage", "workload", *cache]) == 0
        assert main(["pipeline", "status", *cache]) == 0
        out = capsys.readouterr().out
        assert "workload" not in out and "dataset" in out

    def test_status_and_clean_handle_damaged_entries(self, tmp_path, capsys):
        """Truncated or missing meta sidecars must not crash bookkeeping."""
        from repro.pipeline import ArtifactCache
        from repro.pipeline.cache import META_NAME, PAYLOAD_NAME

        root = tmp_path / "cache"
        cache_args = ["--cache-dir", str(root)]
        cache = ArtifactCache(root)
        cache.store_pickle("model", "a" * 64, {"w": 1}, {"n_items": 1})
        cache.store_pickle("model", "b" * 64, {"w": 2}, {"n_items": 1})
        # One truncated sidecar, one entry missing its sidecar entirely.
        (cache.entry_dir("model", "a" * 64) / META_NAME).write_text("{trunc")
        orphan = cache.entry_dir("model", "c" * 64)
        orphan.mkdir(parents=True)
        (orphan / PAYLOAD_NAME).write_bytes(b"\x80\x04 garbage")

        assert main(["pipeline", "status", *cache_args]) == 0
        out = capsys.readouterr().out
        assert out.count("DAMAGED") == 2
        assert "pipeline clean --stage model" in out

        # Clean sweeps the damaged entries along with the healthy one.
        assert main(["pipeline", "clean", "--stage", "model", *cache_args]) == 0
        assert "removed 3" in capsys.readouterr().out
        assert main(["pipeline", "status", *cache_args]) == 0
        out = capsys.readouterr().out
        assert "DAMAGED" not in out and "(empty)" in out

    def test_serve_fault_plan_flag(self, tmp_path):
        args = build_parser().parse_args(
            ["serve", "--fault-plan", str(tmp_path / "plan.json")]
        )
        assert args.fault_plan == tmp_path / "plan.json"
        assert build_parser().parse_args(["serve"]).fault_plan is None

    def test_clean_requires_filter_or_all(self, tmp_path, capsys):
        assert main(["pipeline", "clean", "--cache-dir", str(tmp_path)]) == 2
        assert "--all" in capsys.readouterr().err

    def test_run_writes_manifest(self, tmp_path):
        manifest = tmp_path / "manifest.json"
        assert main([
            "pipeline", "run", *SCALE,
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest", str(manifest),
        ]) == 0
        from repro.pipeline import RunManifest

        loaded = RunManifest.load(manifest)
        assert loaded.n_jobs > 0 and loaded.stages_total >= 4
