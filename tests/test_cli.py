"""CLI smoke tests (argument parsing plus end-to-end subcommands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--system", "meggie", "--out", "x.csv", "--num-nodes", "16"]
        )
        assert args.system == "meggie"
        assert args.num_nodes == 16


SCALE = [
    "--num-nodes", "16", "--num-users", "8",
    "--horizon-days", "2", "--max-traces", "5", "--seed", "1",
]


class TestCommands:
    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "emmy" in out and "meggie" in out and "560" in out

    def test_generate_csv(self, tmp_path, capsys):
        out = tmp_path / "jobs.csv"
        assert main(["generate", "--out", str(out), *SCALE]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_generate_npz(self, tmp_path):
        out = tmp_path / "jobs.npz"
        assert main(["generate", "--out", str(out), *SCALE]) == 0
        from repro.telemetry.schema import load_jobs_npz

        assert len(load_jobs_npz(out)) > 0

    def test_generate_bad_suffix(self, tmp_path, capsys):
        assert main(["generate", "--out", str(tmp_path / "jobs.txt"), *SCALE]) == 2

    def test_analyze(self, capsys):
        assert main(["analyze", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "power utilization" in out
        assert "Spearman" in out

    def test_predict(self, capsys):
        assert main(["predict", "--repeats", "2", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "BDT" in out and "FLDA" in out

    def test_report(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "--out", str(out), "--no-prediction", *SCALE]) == 0
        text = out.read_text()
        assert text.startswith("# Power characterization")
        assert "## Users" in text

    def test_figures(self, tmp_path, capsys):
        out = tmp_path / "figs"
        assert main(["figures", "--out-dir", str(out), "--repeats", "2", *SCALE]) == 0
        assert len(list(out.glob("*.svg"))) >= 10
