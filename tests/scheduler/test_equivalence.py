"""Optimized engine vs the retained naive reference, bit for bit.

The incremental core (linked queue, sorted running set, event
coalescing, heap-backed node pool) is only admissible because its
outputs are *identical* to the naive per-pass implementation frozen in
:mod:`repro.scheduler.reference`. These tests enforce that:

* a hypothesis property test runs randomized workloads through both
  engines and compares start times, node placements, and completion
  order exactly;
* an admission-constrained subclass pair checks that coalescing
  correctly disables itself when ``_admissible`` is overridden;
* a pinned-seed golden digest guards the full pipeline's scheduler
  output across refactors.
"""

import hashlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler import Simulator, SchedulerConfig, simulate
from repro.scheduler.reference import ReferenceSimulator, reference_simulate
from repro.workload.generator import JobSpec, WorkloadGenerator
from repro.workload.phases import TemporalProfile
from repro.workload.spatial import SpatialModel

_PROFILE = TemporalProfile(kind="flat")
_SPATIAL = SpatialModel(static_sigma=0.0)

# Scheduler output digest of generate_dataset("emmy", seed=7,
# num_nodes=64, num_users=24, horizon_s=10 days): job ids, start times,
# and node placements. Must never change — the pipeline cache and every
# downstream telemetry artifact depend on these exact placements.
GOLDEN_SMALL_DIGEST = "42835e12317da1061f1ec1e0841baa67a76e69c49565bba0c07c0c976113d99a"


def _spec(job_id, nodes, runtime, submit, slack):
    return JobSpec(
        job_id=job_id,
        user_id="u0001",
        app="gromacs",
        system="emmy",
        class_id=0,
        nodes=nodes,
        req_walltime_s=runtime + slack,
        runtime_s=runtime,
        submit_s=submit,
        power_fraction=0.7,
        profile=_PROFILE,
        spatial=_SPATIAL,
    )


def _key(results):
    return [
        (j.spec.job_id, j.start_s, tuple(j.node_ids.tolist())) for j in results
    ]


job_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=12),   # nodes
        st.integers(min_value=1, max_value=200),  # runtime
        st.integers(min_value=0, max_value=150),  # submit
        st.integers(min_value=0, max_value=90),   # walltime slack
    ),
    min_size=1,
    max_size=18,
)


@given(jobs=job_lists, num_nodes=st.integers(min_value=12, max_value=24),
       depth=st.integers(min_value=0, max_value=8))
@settings(max_examples=200, deadline=None)
def test_matches_reference_on_random_workloads(jobs, num_nodes, depth):
    specs = [_spec(i, n, r, s, w) for i, (n, r, s, w) in enumerate(jobs)]
    fast = simulate(specs, num_nodes, backfill_depth=depth)
    slow = reference_simulate(specs, num_nodes, backfill_depth=depth)
    assert _key(fast) == _key(slow)


@given(jobs=job_lists, num_nodes=st.integers(min_value=12, max_value=24))
@settings(max_examples=60, deadline=None)
def test_admission_subclass_matches_reference(jobs, num_nodes):
    """Custom ``_admissible`` must disable coalescing, not corrupt it."""

    class CappedFast(Simulator):
        def _admissible(self, spec):
            return spec.nodes <= 6

    class CappedSlow(ReferenceSimulator):
        def _admissible(self, spec):
            return spec.nodes <= 6

    specs = [
        _spec(i, min(n, 6), r, s, w)  # keep every job admissible eventually
        for i, (n, r, s, w) in enumerate(jobs)
    ]
    fast_sim = CappedFast(SchedulerConfig(num_nodes=num_nodes, backfill_depth=4))
    assert not fast_sim._coalesce_arrivals
    slow_sim = CappedSlow(SchedulerConfig(num_nodes=num_nodes, backfill_depth=4))
    assert _key(fast_sim.run(specs)) == _key(slow_sim.run(specs))


def test_golden_scheduler_digest():
    """Pinned-seed placements are byte-stable across refactors."""
    from repro.telemetry.dataset import build_inputs

    cluster, params = build_inputs(
        "emmy", seed=7, num_nodes=64, num_users=24, horizon_s=10 * 86400
    )
    specs = WorkloadGenerator(params, cluster.num_nodes, seed=7).generate()
    scheduled = simulate(specs, cluster.num_nodes, backfill_depth=100)
    h = hashlib.sha256()
    for job in scheduled:
        h.update(f"{job.spec.job_id},{job.start_s},".encode())
        h.update(np.ascontiguousarray(job.node_ids).tobytes())
        h.update(str(job.node_ids.dtype).encode())
    assert h.hexdigest() == GOLDEN_SMALL_DIGEST
