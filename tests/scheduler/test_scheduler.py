"""Tests for the node pool, backfill math, and the scheduling engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, SchedulerError
from repro.scheduler import SchedulerConfig, accounting_table, simulate
from repro.scheduler.backfill import shadow_time
from repro.scheduler.nodepool import NodePool
from repro.workload.generator import JobSpec
from repro.workload.phases import TemporalProfile
from repro.workload.spatial import SpatialModel


def job(job_id, nodes, runtime, submit=0, walltime=None, user="u0001"):
    return JobSpec(
        job_id=job_id,
        user_id=user,
        app="gromacs",
        system="emmy",
        class_id=job_id,
        nodes=nodes,
        req_walltime_s=walltime or max(600, runtime),
        runtime_s=runtime,
        submit_s=submit,
        power_fraction=0.7,
        profile=TemporalProfile(kind="flat"),
        spatial=SpatialModel(static_sigma=0.02),
    )


class TestNodePool:
    def test_allocate_release_cycle(self):
        pool = NodePool(8)
        ids = pool.allocate(3)
        assert ids.tolist() == [0, 1, 2]
        assert pool.free_count == 5
        pool.release(ids)
        assert pool.free_count == 8

    def test_first_fit_lowest_ids(self):
        pool = NodePool(8)
        a = pool.allocate(2)
        b = pool.allocate(2)
        pool.release(a)
        c = pool.allocate(1)
        assert c.tolist() == [0]

    def test_over_allocation(self):
        pool = NodePool(4)
        with pytest.raises(AllocationError, match="only 4 free"):
            pool.allocate(5)

    def test_double_free(self):
        pool = NodePool(4)
        ids = pool.allocate(2)
        pool.release(ids)
        with pytest.raises(AllocationError, match="double free"):
            pool.release(ids)

    def test_zero_allocation(self):
        with pytest.raises(AllocationError):
            NodePool(4).allocate(0)


class TestShadowTime:
    def test_basic(self):
        # Head needs 4, 1 free; jobs of 2 nodes end at t=10 and t=20.
        shadow, extra = shadow_time(4, 1, [20, 10], [2, 2])
        assert shadow == 20
        assert extra == 1  # 1+2+2=5 free at t=20, head takes 4

    def test_first_release_suffices(self):
        shadow, extra = shadow_time(3, 1, [10, 20], [2, 2])
        assert shadow == 10 and extra == 0

    def test_head_not_blocked(self):
        with pytest.raises(ValueError):
            shadow_time(2, 4, [10], [1])

    def test_nothing_running(self):
        with pytest.raises(ValueError):
            shadow_time(2, 0, [], [])


class TestSimulator:
    def test_fcfs_serial_jobs(self):
        jobs = [job(0, 4, 600, submit=0), job(1, 4, 600, submit=0)]
        out = simulate(jobs, num_nodes=4)
        by_id = {j.spec.job_id: j for j in out}
        assert by_id[0].start_s == 0
        assert by_id[1].start_s == by_id[0].end_s

    def test_parallel_when_fits(self):
        jobs = [job(0, 2, 600), job(1, 2, 600)]
        out = simulate(jobs, num_nodes=4)
        assert all(j.start_s == 0 for j in out)

    def test_backfill_jumps_blocked_head(self):
        # job0 occupies 3/4 nodes for 1000 s; job1 (head) needs 4;
        # job2 needs 1 node for 300 s and fits before job1's shadow time.
        jobs = [
            job(0, 3, 1000, submit=0, walltime=1000),
            job(1, 4, 600, submit=10, walltime=600),
            job(2, 1, 300, submit=20, walltime=300),
        ]
        out = simulate(jobs, num_nodes=4)
        by_id = {j.spec.job_id: j for j in out}
        assert by_id[2].start_s == 20  # backfilled immediately
        assert by_id[1].start_s == 1000  # head starts when job0 ends

    def test_backfill_never_delays_head(self):
        # A long backfill candidate must NOT start if it would push the
        # head past its shadow time and needs the head's nodes.
        jobs = [
            job(0, 3, 1000, submit=0, walltime=1000),
            job(1, 4, 600, submit=10, walltime=600),
            job(2, 1, 5000, submit=20, walltime=5000),
        ]
        out = simulate(jobs, num_nodes=4)
        by_id = {j.spec.job_id: j for j in out}
        assert by_id[1].start_s == 1000  # head unharmed
        # job2 would end at 20+5000 > shadow(1000) and needs 1 > extra(0)
        assert by_id[2].start_s >= by_id[1].start_s

    def test_backfill_uses_spare_nodes(self):
        # Head needs 3 of 4; one node stays spare at shadow time, so a
        # 1-node job of any length may run.
        jobs = [
            job(0, 3, 1000, submit=0, walltime=1000),
            job(1, 3, 600, submit=10, walltime=600),
            job(2, 1, 9000, submit=20, walltime=9000),
        ]
        out = simulate(jobs, num_nodes=4)
        by_id = {j.spec.job_id: j for j in out}
        assert by_id[2].start_s == 20
        assert by_id[1].start_s == 1000

    def test_oversized_job_rejected(self):
        with pytest.raises(SchedulerError, match="requests"):
            simulate([job(0, 10, 600)], num_nodes=4)

    def test_all_jobs_complete(self, rng):
        jobs = [
            job(i, int(rng.integers(1, 5)), int(rng.integers(300, 3000)),
                submit=int(rng.integers(0, 5000)))
            for i in range(200)
        ]
        out = simulate(jobs, num_nodes=8)
        assert len(out) == 200
        assert {j.spec.job_id for j in out} == set(range(200))

    def test_no_node_oversubscription(self, rng):
        """At no instant do concurrent jobs share a node (exclusivity)."""
        jobs = [
            job(i, int(rng.integers(1, 4)), int(rng.integers(300, 2000)),
                submit=int(rng.integers(0, 2000)))
            for i in range(120)
        ]
        out = simulate(jobs, num_nodes=6)
        events = []
        for s in out:
            events.append((s.start_s, 1, s))
            events.append((s.end_s, 0, s))
        events.sort(key=lambda e: (e[0], e[1]))
        active: dict[int, set] = {}
        busy: set = set()
        for _, kind, s in events:
            ids = set(s.node_ids.tolist())
            if kind == 0:
                busy -= ids
            else:
                assert not (busy & ids), "node shared by two jobs"
                busy |= ids

    def test_accounting_table(self):
        out = simulate([job(0, 2, 600), job(1, 1, 300, submit=100)], num_nodes=4)
        table = accounting_table(out)
        assert len(table) == 2
        assert set(table.column_names) >= {
            "job_id", "user", "nodes", "submit_s", "start_s", "end_s", "wait_s",
        }
        assert np.all(table["wait_s"] >= 0)
        assert np.all(table["end_s"] - table["start_s"] == table["runtime_s"])

    def test_config_validation(self):
        with pytest.raises(SchedulerError):
            SchedulerConfig(num_nodes=0)
        with pytest.raises(SchedulerError):
            SchedulerConfig(num_nodes=4, backfill_depth=-1)


@given(
    st.lists(
        st.tuples(
            st.integers(1, 4),      # nodes
            st.integers(300, 5000), # runtime
            st.integers(0, 3000),   # submit
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=30, deadline=None)
def test_scheduler_invariants(jobspecs):
    """Every job starts at/after submit, runs exactly runtime_s, and the
    allocation never exceeds the machine."""
    jobs = [
        job(i, n, r, submit=s, walltime=max(600, r))
        for i, (n, r, s) in enumerate(jobspecs)
    ]
    out = simulate(jobs, num_nodes=4)
    assert len(out) == len(jobs)
    for s in out:
        assert s.start_s >= s.spec.submit_s
        assert s.end_s - s.start_s == s.spec.runtime_s
        assert len(s.node_ids) == s.spec.nodes
        assert s.node_ids.max() < 4
