"""Mid-run job death: truncated runtimes through the scheduling engine.

A failed job (repro.workload.failures) carries a runtime truncated to
the failure point, far below its requested walltime. The engine must
release its nodes at the *actual* end — not the requested one — while
EASY backfill keeps reasoning about requested end times, and every
queue/pool invariant must survive workloads where most jobs die early.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler import SchedulerConfig, simulate
from repro.scheduler.simulator import Simulator
from repro.workload.generator import JobSpec
from repro.workload.phases import TemporalProfile
from repro.workload.spatial import SpatialModel


def job(job_id, nodes, runtime, submit=0, walltime=None, exit_code=0):
    return JobSpec(
        job_id=job_id,
        user_id="u0001",
        app="gromacs",
        system="emmy",
        class_id=job_id,
        nodes=nodes,
        req_walltime_s=walltime or max(600, runtime),
        runtime_s=runtime,
        submit_s=submit,
        power_fraction=0.7,
        profile=TemporalProfile(kind="flat"),
        spatial=SpatialModel(static_sigma=0.02),
        exit_code=exit_code,
    )


class TestNodeRelease:
    def test_dead_job_releases_nodes_at_truncated_end(self):
        """A job dying at t=100 (walltime 10000) frees the machine then."""
        dead = job(0, nodes=4, runtime=100, walltime=10_000, exit_code=137)
        waiter = job(1, nodes=4, runtime=200, submit=0)
        placed = {j.spec.job_id: j for j in simulate([dead, waiter], 4)}
        assert placed[0].end_s == 100
        assert placed[1].start_s == 100  # not 10_000

    def test_backfill_window_uses_requested_end_of_dying_job(self):
        """EASY plans around requested walltimes; the early death then
        frees nodes ahead of plan, and the next pass uses them."""
        dying = job(0, nodes=3, runtime=50, walltime=5_000, exit_code=271)
        head = job(1, nodes=4, runtime=100, submit=1)  # blocked behind it
        small = job(2, nodes=1, runtime=40, submit=1)  # backfill candidate
        placed = {j.spec.job_id: j for j in simulate([dying, head, small], 4)}
        # small fits beside the dying job immediately (1 free node) and
        # its requested end (600s) precedes the dying job's requested
        # end only through the extra-nodes budget — it must start at 1.
        assert placed[2].start_s == 1
        # head starts once the dying job's death frees the machine.
        assert placed[1].start_s == 50

    def test_chained_deaths_keep_fcfs_order(self):
        specs = [
            job(i, nodes=2, runtime=60, walltime=7_200, submit=i,
                exit_code=137)
            for i in range(10)
        ]
        placed = simulate(specs, 2)
        starts = {j.spec.job_id: j.start_s for j in placed}
        for i in range(1, 10):
            assert starts[i] == starts[i - 1] + 60


class TestQueueInvariants:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_death_mix_never_overlaps_nodes(self, seed):
        """Every job runs exactly once; no node hosts two jobs at once."""
        rng = np.random.default_rng(seed)
        num_nodes = 8
        specs = []
        for i in range(60):
            walltime = int(rng.integers(600, 7200))
            failed = rng.random() < 0.4
            runtime = int(rng.integers(60, 300)) if failed else walltime
            specs.append(job(
                i, nodes=int(rng.integers(1, num_nodes + 1)),
                runtime=min(runtime, walltime), walltime=walltime,
                submit=int(rng.integers(0, 5000)),
                exit_code=137 if failed else 0,
            ))
        placed = simulate(specs, num_nodes)
        assert sorted(j.spec.job_id for j in placed) == list(range(60))
        by_node: dict[int, list[tuple[int, int]]] = {}
        for j in placed:
            assert j.end_s == j.start_s + j.spec.runtime_s
            for node in j.node_ids.tolist():
                by_node.setdefault(node, []).append((j.start_s, j.end_s))
        for intervals in by_node.values():
            intervals.sort()
            for (_, end), (nxt_start, _) in zip(intervals, intervals[1:]):
                assert nxt_start >= end

    def test_pool_fully_free_after_drain(self):
        specs = [
            job(i, nodes=3, runtime=90, walltime=3_600, submit=i * 7,
                exit_code=1)
            for i in range(25)
        ]
        sim = Simulator(SchedulerConfig(num_nodes=6))
        sim.run(specs)
        assert sim.pool.free_count == 6
        assert not sim._completions and not sim._queue
