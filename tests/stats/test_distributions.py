"""Tests for ECDF, quantiles, histograms, and summaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    ECDF,
    cdf_at,
    coefficient_of_variation,
    describe,
    fraction_below,
    freedman_diaconis_bins,
    histogram_pdf,
    quantile,
    weighted_mean,
)

finite_floats = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)


class TestECDF:
    def test_basic_evaluation(self):
        e = ECDF([1.0, 2.0, 3.0, 4.0])
        assert e(0.5) == 0.0
        assert e(1.0) == 0.25
        assert e(2.5) == 0.5
        assert e(4.0) == 1.0
        assert e(99.0) == 1.0

    def test_vectorized(self):
        e = ECDF([1.0, 2.0])
        np.testing.assert_allclose(e([0.0, 1.0, 2.0]), [0.0, 0.5, 1.0])

    def test_quantile_inverse(self):
        e = ECDF([10.0, 20.0, 30.0, 40.0])
        assert e.quantile(0.25) == 10.0
        assert e.quantile(1.0) == 40.0
        assert e.quantile(0.0) == 10.0

    def test_quantile_out_of_range(self):
        with pytest.raises(ValueError):
            ECDF([1.0]).quantile(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ECDF([])

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            ECDF([1.0, np.nan])

    def test_steps_shape(self):
        x, f = ECDF([3.0, 1.0, 2.0]).steps()
        assert x.tolist() == [1.0, 2.0, 3.0]
        assert f.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_support_and_mean(self):
        e = ECDF([5.0, 1.0, 3.0])
        assert e.support == (1.0, 5.0)
        assert e.mean() == 3.0

    @given(st.lists(finite_floats, min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_monotone_and_bounded(self, xs):
        e = ECDF(xs)
        grid = np.linspace(min(xs) - 1, max(xs) + 1, 50)
        values = e(grid)
        assert np.all(np.diff(values) >= 0)
        assert values[0] >= 0 and values[-1] == 1.0


class TestHelpers:
    def test_cdf_at(self):
        assert cdf_at([1, 2, 3, 4], 2) == 0.5

    def test_fraction_below(self):
        assert fraction_below([1.0, 2.0, 3.0], 2.0) == pytest.approx(1 / 3)

    def test_quantile(self):
        assert quantile([0.0, 10.0], 0.5) == 5.0


class TestDescribe:
    def test_values(self):
        s = describe([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.min == 1.0 and s.max == 4.0

    def test_as_dict_keys(self):
        d = describe([1.0]).as_dict()
        assert set(d) == {"count", "mean", "std", "min", "p25", "median", "p75", "max"}

    def test_empty(self):
        with pytest.raises(ValueError):
            describe([])


class TestWeightedMean:
    def test_basic(self):
        assert weighted_mean([1.0, 3.0], [1.0, 3.0]) == 2.5

    def test_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])

    def test_negative_weights(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0, 2.0], [1.0, -1.0])


class TestCoV:
    def test_basic(self):
        assert coefficient_of_variation([1.0, 1.0]) == 0.0

    def test_zero_mean(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([-1.0, 1.0])


class TestHistogram:
    def test_pdf_integrates_to_one(self, rng):
        pdf = histogram_pdf(rng.normal(size=500))
        assert pdf.integral() == pytest.approx(1.0)

    def test_explicit_bins(self):
        pdf = histogram_pdf([1.0, 2.0, 3.0], bins=3)
        assert len(pdf.density) == 3
        assert len(pdf.edges) == 4

    def test_mode(self):
        pdf = histogram_pdf([1.0, 1.1, 1.2, 5.0], bins=4)
        assert pdf.mode() < 3.0

    def test_fd_bins_positive(self, rng):
        assert 1 <= freedman_diaconis_bins(rng.normal(size=100)) <= 200

    def test_fd_bins_degenerate(self):
        assert freedman_diaconis_bins([1.0, 1.0, 1.0]) == 1

    def test_empty(self):
        with pytest.raises(ValueError):
            histogram_pdf([])
