"""Correlation kernels cross-checked against scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as sps

from repro.stats.correlation import pearson, rankdata, spearman


class TestRankdata:
    def test_no_ties(self):
        assert rankdata([30.0, 10.0, 20.0]).tolist() == [3.0, 1.0, 2.0]

    def test_ties_get_midranks(self):
        assert rankdata([1.0, 2.0, 2.0, 3.0]).tolist() == [1.0, 2.5, 2.5, 4.0]

    def test_matches_scipy(self, rng):
        x = rng.integers(0, 10, size=200).astype(float)
        np.testing.assert_allclose(rankdata(x), sps.rankdata(x))


class TestSpearman:
    def test_perfect_monotone(self):
        r = spearman([1, 2, 3, 4], [10, 20, 30, 40])
        assert r.statistic == pytest.approx(1.0)
        assert r.pvalue == pytest.approx(0.0, abs=1e-12)

    def test_perfect_inverse(self):
        r = spearman([1, 2, 3, 4], [4, 3, 2, 1])
        assert r.statistic == pytest.approx(-1.0)

    def test_matches_scipy_continuous(self, rng):
        x = rng.normal(size=300)
        y = 0.5 * x + rng.normal(size=300)
        ours = spearman(x, y)
        ref = sps.spearmanr(x, y)
        assert ours.statistic == pytest.approx(ref.statistic, abs=1e-10)
        assert ours.pvalue == pytest.approx(ref.pvalue, rel=1e-6)

    def test_matches_scipy_with_ties(self, rng):
        x = rng.integers(0, 5, size=400).astype(float)
        y = x + rng.integers(0, 3, size=400)
        ours = spearman(x, y)
        ref = sps.spearmanr(x, y)
        assert ours.statistic == pytest.approx(ref.statistic, abs=1e-10)
        assert ours.pvalue == pytest.approx(ref.pvalue, rel=1e-6)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman([1, 2], [1, 2, 3])

    def test_too_short(self):
        with pytest.raises(ValueError):
            spearman([1, 2], [3, 4])

    def test_constant_input(self):
        with pytest.raises(ValueError):
            spearman([1, 1, 1], [1, 2, 3])


class TestPearson:
    def test_matches_scipy(self, rng):
        x = rng.normal(size=250)
        y = -0.3 * x + rng.normal(size=250)
        ours = pearson(x, y)
        ref = sps.pearsonr(x, y)
        assert ours.statistic == pytest.approx(ref.statistic, abs=1e-12)
        assert ours.pvalue == pytest.approx(ref.pvalue, rel=1e-6)

    def test_result_iterable(self):
        r, p = pearson([1.0, 2.0, 3.0], [1.0, 2.1, 2.9])
        assert -1 <= r <= 1 and 0 <= p <= 1


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=5,
        max_size=60,
    ).filter(lambda xs: len(set(xs)) > 1)
)
@settings(max_examples=40, deadline=None)
def test_spearman_bounded_and_monotone_invariant(xs):
    """rho stays in [-1,1] and is invariant under monotone transforms."""
    x = np.asarray(xs)
    rng = np.random.default_rng(0)
    y = x + rng.normal(scale=0.1 * (np.std(x) + 1), size=len(x))
    r1 = spearman(x, y).statistic
    assert -1.0 <= r1 <= 1.0
    # Scaling by a power of two is exact in binary floating point, so the
    # transform is strictly monotone and tie-preserving.
    r2 = spearman(8.0 * x, y).statistic
    assert r1 == pytest.approx(r2, abs=1e-9)
