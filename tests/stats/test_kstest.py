"""KS test cross-checked against scipy, plus seed-robustness usage."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.stats import ks_two_sample


class TestKsTwoSample:
    def test_identical_samples(self):
        x = np.linspace(0, 1, 100)
        result = ks_two_sample(x, x)
        assert result.statistic == 0.0
        assert result.pvalue == pytest.approx(1.0)

    def test_matches_scipy_same_distribution(self, rng):
        a, b = rng.normal(size=400), rng.normal(size=300)
        ours = ks_two_sample(a, b)
        ref = sps.ks_2samp(a, b, method="asymp")
        assert ours.statistic == pytest.approx(ref.statistic, abs=1e-12)
        assert ours.pvalue == pytest.approx(ref.pvalue, rel=0.05, abs=1e-4)

    def test_matches_scipy_different_distribution(self, rng):
        a = rng.normal(0.0, 1.0, 500)
        b = rng.normal(0.5, 1.0, 500)
        ours = ks_two_sample(a, b)
        ref = sps.ks_2samp(a, b, method="asymp")
        assert ours.statistic == pytest.approx(ref.statistic, abs=1e-12)
        assert ours.pvalue < 0.01

    def test_detects_shift(self, rng):
        a = rng.random(300)
        result = ks_two_sample(a, a + 0.5)
        assert result.pvalue < 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            ks_two_sample([], [1.0])
        with pytest.raises(ValueError):
            ks_two_sample([np.nan], [1.0])


class TestSeedRobustness:
    """Two seeds of the same system look alike; two systems do not."""

    @pytest.fixture(scope="class")
    def triple(self):
        import repro

        kw = dict(num_nodes=40, num_users=20, horizon_s=6 * 86400, max_traces=0)
        return (
            repro.generate_dataset("emmy", seed=101, **kw),
            repro.generate_dataset("emmy", seed=202, **kw),
            repro.generate_dataset("meggie", seed=101, **kw),
        )

    def test_same_system_similar_power_distribution(self, triple):
        emmy_a, emmy_b, _ = triple
        result = ks_two_sample(
            emmy_a.jobs["pernode_power_w"], emmy_b.jobs["pernode_power_w"]
        )
        # Different seeds draw different users/classes, so the
        # distributions are similar but not identical: bound the
        # statistic rather than the p-value.
        assert result.statistic < 0.25

    def test_cross_system_clearly_different(self, triple):
        emmy_a, _, meggie = triple
        result = ks_two_sample(
            emmy_a.jobs["pernode_power_w"], meggie.jobs["pernode_power_w"]
        )
        assert result.statistic > 0.25
        assert result.pvalue < 1e-6
