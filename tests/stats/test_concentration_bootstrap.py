"""Tests for concentration curves and bootstrap CIs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import bootstrap_ci, lorenz_curve, overlap_fraction, top_share
from repro.stats.concentration import gini, top_k_ids


class TestLorenz:
    def test_equal_distribution(self):
        frac, share = lorenz_curve([1.0, 1.0, 1.0, 1.0])
        np.testing.assert_allclose(share, frac)

    def test_extreme_concentration(self):
        frac, share = lorenz_curve([100.0, 0.0, 0.0, 0.0])
        assert share[0] == 1.0

    def test_monotone(self, rng):
        _, share = lorenz_curve(rng.random(50))
        assert np.all(np.diff(share) >= -1e-12)
        assert share[-1] == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            lorenz_curve([-1.0, 2.0])

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            lorenz_curve([0.0, 0.0])


class TestTopShare:
    def test_pareto_like(self):
        totals = [80.0, 10.0, 5.0, 3.0, 2.0]
        assert top_share(totals, 0.2) == pytest.approx(0.80)

    def test_full_fraction(self):
        assert top_share([1.0, 2.0], 1.0) == pytest.approx(1.0)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            top_share([1.0], 0.0)


class TestGini:
    def test_equal_is_zero(self):
        assert gini([5.0] * 10) == pytest.approx(0.0)

    def test_concentrated_near_one(self):
        values = [0.0] * 99 + [100.0]
        assert gini(values) > 0.95

    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=2, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_bounded(self, xs):
        assert 0.0 <= gini(xs) < 1.0


class TestOverlap:
    def test_identical_metrics(self):
        ids = np.asarray(["a", "b", "c", "d", "e"])
        totals = np.asarray([5.0, 4.0, 3.0, 2.0, 1.0])
        assert overlap_fraction(ids, totals, totals, 0.4) == 1.0

    def test_disjoint_metrics(self):
        ids = np.asarray(["a", "b", "c", "d"])
        a = np.asarray([4.0, 3.0, 2.0, 1.0])
        b = np.asarray([1.0, 2.0, 3.0, 4.0])
        assert overlap_fraction(ids, a, b, 0.5) == 0.0

    def test_top_k_ids(self):
        ids = np.asarray(["a", "b", "c"])
        assert top_k_ids(ids, [1.0, 9.0, 5.0], 0.3).tolist() == ["b"]
        assert top_k_ids(ids, [1.0, 9.0, 5.0], 0.6).tolist() == ["b", "c"]


class TestBootstrap:
    def test_mean_ci_contains_truth(self, rng):
        sample = rng.normal(loc=10.0, scale=1.0, size=400)
        result = bootstrap_ci(sample, np.mean, rng=rng)
        assert result.low < 10.0 < result.high
        assert result.contains(result.estimate)

    def test_interval_ordering(self, rng):
        r = bootstrap_ci(rng.random(50), np.median, rng=rng)
        assert r.low <= r.estimate <= r.high or r.low <= r.high  # percentile CI

    def test_callable_without_axis(self, rng):
        r = bootstrap_ci(rng.random(30), lambda x: float(np.percentile(x, 90)), rng=rng)
        assert r.low <= r.high

    def test_bad_level(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], level=1.5)

    def test_empty(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
