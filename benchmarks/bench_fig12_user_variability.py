"""F12 — Fig 12: variability of per-node power among a user's jobs."""

from conftest import fmt_pct

from repro.analysis import per_node_power_distribution, user_power_variability


def test_fig12_per_user_variability(benchmark, report, emmy_full, meggie_full):
    emmy = benchmark(user_power_variability, emmy_full)
    meggie = user_power_variability(meggie_full)

    rows = [
        ("emmy mean per-user sigma/mean", "50%", fmt_pct(emmy.mean_cov)),
        ("meggie mean per-user sigma/mean", "100%", fmt_pct(meggie.mean_cov)),
        ("emmy median per-user sigma/mean", "-", fmt_pct(emmy.median_cov)),
        ("users with >=2 jobs (emmy/meggie)", "-",
         f"{emmy.n_users}/{meggie.n_users}"),
    ]
    population_cov = per_node_power_distribution(emmy_full).std_over_mean
    report(
        "F12",
        "per-user power variability",
        rows,
        note="The paper's Fig 12 means (50%/100%) are mutually inconsistent "
        "with its own Fig 3 population spreads (26%/18%) under the law of "
        "total variance; our generative model reproduces the qualitative "
        f"claim (per-user CoV {fmt_pct(emmy.mean_cov)} >> what clustering "
        f"leaves, Fig 13) at the largest level consistent with Fig 3 "
        f"(population CoV {fmt_pct(population_cov)}).",
    )

    # Users are NOT monotonous: per-user variability well above the
    # within-cluster level (Fig 13 asserts the collapse).
    assert emmy.mean_cov > 0.15
    assert meggie.mean_cov > 0.12
