"""F7 — Fig 7: temporal power-consumption CDFs (metrics of Fig 6).

The paper instruments Emmy's key applications for one month; its
headline: temporal variance is *limited* (mean σ_t/µ ≈ 11%, mean peak
overshoot ≈ 10–12%, most jobs never spend time >10% above their mean).
"""

from conftest import fmt_pct

from repro.analysis import temporal_summary


def test_fig7_temporal_cdfs(benchmark, report, emmy_full):
    t = benchmark(temporal_summary, emmy_full)

    rows = [
        ("mean temporal sigma/mean", "11%", fmt_pct(t.mean_temporal_cov)),
        ("mean peak overshoot (7a)", "10-12%", fmt_pct(t.mean_peak_overshoot)),
        ("80th pct of overshoot (7a)", "<= ~12%",
         fmt_pct(t.overshoot_at_percentile(0.8))),
        ("mean runtime >10% above mean (7b)", "10%",
         fmt_pct(t.mean_frac_time_above_10pct)),
        ("jobs spending ~0% above (7b)", ">70%", fmt_pct(t.frac_jobs_never_above)),
        ("instrumented jobs", "selected key apps", f"{t.n_jobs}"),
    ]
    report("F7", "temporal variance CDFs", rows)

    assert t.mean_temporal_cov < 0.20          # "limited temporal variance"
    assert 0.05 < t.mean_peak_overshoot < 0.20
    assert t.frac_jobs_never_above > 0.5
    assert t.mean_frac_time_above_10pct < 0.20
