"""A5 — Ablation: power-capped scheduling cost curve.

Sections 3/6 argue the system can be capped near its observed draw. The
missing number is the *scheduling* cost: if the batch system enforces a
power budget at admission (using predicted job power + 15% headroom),
how much queueing delay does each budget level add? The sweep shows the
knee: caps above the observed draw (~70% of TDP on Emmy) are free, caps
below it trade power for wait time.
"""

from conftest import BENCH_SEED, fmt_pct

from repro.cluster import get_spec
from repro.policy import evaluate_power_capped_scheduling
from repro.units import DAY
from repro.workload import WorkloadGenerator, default_params


def _job_stream():
    spec = get_spec("emmy")
    params = default_params("emmy", num_users=60, horizon_s=21 * DAY)
    generator = WorkloadGenerator(params, 140, seed=BENCH_SEED)
    return generator.generate(), 140, spec.node_tdp_watts


def test_ablation_power_capped_scheduling(benchmark, report):
    jobs, num_nodes, tdp = _job_stream()

    outcome_085 = benchmark.pedantic(
        evaluate_power_capped_scheduling,
        args=(jobs, num_nodes, tdp),
        kwargs={"budget_fraction": 0.85},
        rounds=1,
        iterations=1,
    )

    rows = []
    outcomes = {0.85: outcome_085}
    for frac in (1.0, 0.70, 0.60):
        outcomes[frac] = evaluate_power_capped_scheduling(
            jobs, num_nodes, tdp, budget_fraction=frac
        )
    for frac in sorted(outcomes, reverse=True):
        o = outcomes[frac]
        rows.append(
            (f"budget {fmt_pct(frac)} of TDP: added wait",
             "knee at demand x (1+headroom)",
             f"+{o.wait_penalty_s / 3600:.1f} h mean wait, "
             f"makespan +{fmt_pct(o.makespan_penalty)}, "
             f"peak commitment {fmt_pct(o.peak_commitment_fraction)}")
        )
    report(
        "A5",
        "power-capped scheduling cost sweep (Emmy-like, 140 nodes)",
        rows,
        note="A budget at TDP is free. The knee sits at the workload's "
        "aggregate demand times the 1.15 admission headroom (~0.85 of "
        "TDP here, with offered load ~0.9 and mean draw ~0.72 TDP): the "
        "predicted+15% charging the paper recommends is what the budget "
        "must accommodate, not the raw draw. Below the knee, wait time "
        "and makespan grow quickly — the cost side of harvesting "
        "stranded power.",
    )

    assert outcomes[1.0].wait_penalty_s <= 60.0
    assert outcomes[0.85].wait_penalty_s <= outcomes[0.60].wait_penalty_s
    for o in outcomes.values():
        assert o.peak_commitment_fraction <= 1.0 + 1e-9
