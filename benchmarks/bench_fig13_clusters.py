"""F13 — Fig 13: variability inside (user, nodes) and (user, walltime)
clusters — the basis of the pre-execution prediction result."""

from conftest import fmt_pct

from repro.analysis import cluster_variability, user_power_variability


def test_fig13_cluster_variability(benchmark, report, emmy_full, meggie_full):
    emmy_nodes = benchmark(cluster_variability, emmy_full, "nodes")
    emmy_wall = cluster_variability(emmy_full, "walltime")
    meggie_nodes = cluster_variability(meggie_full, "nodes")
    meggie_wall = cluster_variability(meggie_full, "walltime")

    rows = [
        ("emmy (user,nodes) clusters sigma<10%", "61.7%",
         fmt_pct(emmy_nodes.frac_below_10pct)),
        ("meggie (user,nodes) clusters sigma<10%", "majority",
         fmt_pct(meggie_nodes.frac_below_10pct)),
        ("emmy (user,walltime) clusters sigma<10%", "majority",
         fmt_pct(emmy_wall.frac_below_10pct)),
        ("meggie (user,walltime) clusters sigma<10%", "majority",
         fmt_pct(meggie_wall.frac_below_10pct)),
        ("emmy bucket fractions " + "/".join(emmy_nodes.bucket_labels), "-",
         "/".join(fmt_pct(f) for f in emmy_nodes.bucket_fractions)),
    ]
    report("F13", "cluster variability pies", rows)

    # The collapse: clustering slashes per-user variability.
    for ds, clusters in ((emmy_full, emmy_nodes), (meggie_full, meggie_nodes)):
        user_cov = user_power_variability(ds).mean_cov
        assert clusters.mean_cov < 0.5 * user_cov
        assert clusters.frac_below_10pct > 0.5
