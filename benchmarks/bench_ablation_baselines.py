"""A3 — Ablation: rule-based baselines vs the paper's ML models.

Section 5: "We did not find analytical, ad-hoc or rule-based approaches
to work well for prediction." This bench implements those approaches —
global mean, per-user mean, and a hierarchical exact-match rule — and
measures exactly how far they fall behind the BDT.
"""

from conftest import fmt_pct

from repro.analysis import run_prediction
from repro.ml import (
    DecisionTreeRegressor,
    GlobalMeanBaseline,
    GroupMeanBaseline,
    HierarchicalRuleBaseline,
)


def test_ablation_baselines(benchmark, report, emmy_full):
    models = {
        "BDT": lambda: DecisionTreeRegressor(min_samples_leaf=3),
        "rule (user,nodes,wall)": HierarchicalRuleBaseline,
        "per-user mean": GroupMeanBaseline,
        "global mean": GlobalMeanBaseline,
    }
    results = benchmark.pedantic(
        run_prediction,
        args=(emmy_full,),
        kwargs={"models": models, "n_repeats": 2, "seed": 0},
        rounds=1,
        iterations=1,
    )

    rows = [
        (name, "rule-based approaches inadequate" if name != "BDT" else "best",
         f"{fmt_pct(r.summary.frac_below_5pct)} <5%, "
         f"{fmt_pct(r.summary.frac_below_10pct)} <10%")
        for name, r in results.items()
    ]
    report(
        "A3",
        "rule-based baselines vs BDT (Emmy)",
        rows,
        note="On simulated traces, where configurations repeat exactly, "
        "the exact-match rule ties the BDT — the tree's edge on real "
        "traces comes from generalizing across near-identical configs. "
        "Coarser rules collapse to the per-user mean, which Fig 12's "
        "per-user variability makes useless: the paper's 'rule-based "
        "approaches do not work well' holds for anything an operator "
        "could maintain by hand.",
    )

    bdt = results["BDT"].summary
    assert bdt.frac_below_10pct >= results["rule (user,nodes,wall)"].summary.frac_below_10pct - 0.02
    assert (
        results["rule (user,nodes,wall)"].summary.frac_below_10pct
        > results["per-user mean"].summary.frac_below_10pct
    )
    assert (
        results["per-user mean"].summary.frac_below_10pct
        > results["global mean"].summary.frac_below_10pct
    )
