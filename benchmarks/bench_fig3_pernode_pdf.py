"""F3 — Fig 3: PDFs of per-node power consumption of all jobs."""

from conftest import fmt_pct, fmt_w

from repro.analysis import per_node_power_distribution


def test_fig3_per_node_power_pdf(benchmark, report, emmy_full, meggie_full):
    emmy = benchmark(per_node_power_distribution, emmy_full)
    meggie = per_node_power_distribution(meggie_full)

    rows = [
        ("emmy mean per-node power", "149 W (71% TDP)",
         f"{fmt_w(emmy.mean_watts)} ({fmt_pct(emmy.mean_tdp_fraction)} TDP)"),
        ("emmy std", "39 W (26% of mean)",
         f"{fmt_w(emmy.std_watts)} ({fmt_pct(emmy.std_over_mean)} of mean)"),
        ("meggie mean per-node power", "114 W (59% TDP)",
         f"{fmt_w(meggie.mean_watts)} ({fmt_pct(meggie.mean_tdp_fraction)} TDP)"),
        ("meggie std", "20 W (18% of mean)",
         f"{fmt_w(meggie.std_watts)} ({fmt_pct(meggie.std_over_mean)} of mean)"),
        ("emmy jobs analyzed", "~48k", f"{emmy.n_jobs}"),
        ("meggie jobs analyzed", "~36k", f"{meggie.n_jobs}"),
    ]
    report("F3", "per-node power PDFs", rows)

    # Shape checks: well below TDP, Emmy higher and wider than Meggie.
    assert 0.60 < emmy.mean_tdp_fraction < 0.80
    assert 0.50 < meggie.mean_tdp_fraction < 0.68
    assert emmy.mean_tdp_fraction > meggie.mean_tdp_fraction
    assert emmy.std_over_mean > meggie.std_over_mean
