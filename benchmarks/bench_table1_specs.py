"""T1 — Table 1: system specifications (consistency check + build cost)."""

from repro.cluster import EMMY, MEGGIE, Cluster


def test_table1_specs(benchmark, report):
    cluster = benchmark(Cluster.from_name, "emmy", 0)
    assert cluster.num_nodes == 560

    rows = [
        ("emmy nodes", 560, EMMY.num_nodes),
        ("emmy node TDP", "210 W", f"{EMMY.node_tdp_watts:.0f} W"),
        ("emmy batch system", "Torque/Maui", EMMY.batch_system),
        ("meggie nodes", 728, MEGGIE.num_nodes),
        ("meggie node TDP", "195 W", f"{MEGGIE.node_tdp_watts:.0f} W"),
        ("meggie batch system", "Slurm", MEGGIE.batch_system),
        ("emmy LINPACK", "191 TF / 170 kW",
         f"{EMMY.linpack_tflops:.0f} TF / {EMMY.linpack_power_kw:.0f} kW"),
        ("meggie LINPACK", "472 TF / 210 kW",
         f"{MEGGIE.linpack_tflops:.0f} TF / {MEGGIE.linpack_power_kw:.0f} kW"),
    ]
    report("T1", "Table 1 system specifications", rows)
