"""F5 — Fig 5: per-node power by job length/size (median splits)."""

from conftest import fmt_pct

from repro.analysis import split_analysis


def test_fig5_median_splits(benchmark, report, emmy_full, meggie_full):
    emmy_len = benchmark(split_analysis, emmy_full, "length")
    emmy_size = split_analysis(emmy_full, "size")
    meggie_len = split_analysis(meggie_full, "length")
    meggie_size = split_analysis(meggie_full, "size")

    def fmt(split):
        return (
            f"{fmt_pct(split.low.mean_tdp_fraction)} -> "
            f"{fmt_pct(split.high.mean_tdp_fraction)} of TDP"
        )

    rows = [
        ("emmy short->long", "65% -> 75% of TDP", fmt(emmy_len)),
        ("emmy small->large", "65% -> 76% of TDP", fmt(emmy_size)),
        ("meggie short->long", "57% -> 61% of TDP", fmt(meggie_len)),
        ("meggie small->large", "56% -> 62% of TDP", fmt(meggie_size)),
        ("emmy long jobs less variable", "yes",
         "yes" if emmy_len.high.std_tdp_fraction < emmy_len.low.std_tdp_fraction else "no"),
        ("emmy large jobs less variable", "yes",
         "yes" if emmy_size.high.std_tdp_fraction < emmy_size.low.std_tdp_fraction else "no"),
    ]
    report("F5", "length/size median splits", rows)

    for split in (emmy_len, emmy_size, meggie_len, meggie_size):
        assert split.high.mean_tdp_fraction > split.low.mean_tdp_fraction
    assert emmy_len.high.std_tdp_fraction < emmy_len.low.std_tdp_fraction
    assert emmy_size.high.std_tdp_fraction < emmy_size.low.std_tdp_fraction
