"""A1 — Ablation (Sec 5/6): static per-job power caps at predicted+15%.

The paper argues a static cap at 15% above the predicted per-node power
is safe because temporal variance is low. The ablation sweeps the
headroom and reports how often jobs would be throttled and how much
provisioned power the cap frees.
"""

from conftest import fmt_pct

from repro.policy import StaticCapPolicy, evaluate_capping


def test_ablation_static_capping(benchmark, report, emmy_full):
    outcome = benchmark(evaluate_capping, emmy_full, StaticCapPolicy(headroom=0.15))

    sweep_rows = []
    for headroom in (0.05, 0.10, 0.15, 0.25):
        o = evaluate_capping(emmy_full, StaticCapPolicy(headroom=headroom))
        sweep_rows.append(
            (f"headroom {fmt_pct(headroom)}: throttled node-minutes",
             "rare at 15%", fmt_pct(o.throttled_node_minute_fraction))
        )

    rows = [
        ("jobs never throttled (15% headroom)", "large share",
         fmt_pct(outcome.frac_jobs_unthrottled)),
        ("throttled node-minute fraction", "minimal",
         fmt_pct(outcome.throttled_node_minute_fraction)),
        ("mean energy clipped from throttled jobs", "negligible",
         fmt_pct(outcome.mean_energy_clipped_fraction)),
        ("provisioned power saved vs TDP", ">0",
         fmt_pct(outcome.provisioned_power_saved_fraction)),
        *sweep_rows,
    ]
    report("A1", "static power-capping ablation", rows)

    assert outcome.frac_jobs_unthrottled > 0.35
    assert outcome.throttled_node_minute_fraction < 0.08
    assert outcome.mean_energy_clipped_fraction < 0.02
    assert outcome.provisioned_power_saved_fraction > 0.10
