"""F2 — Fig 2: power consumption vs. provisioned power (stranded power)."""

from conftest import fmt_pct

from repro.analysis import power_utilization


def test_fig2_power_utilization(benchmark, report, emmy_full, meggie_full):
    emmy = benchmark(power_utilization, emmy_full)
    meggie = power_utilization(meggie_full)

    rows = [
        ("emmy mean power utilization", "69%", fmt_pct(emmy.mean)),
        ("meggie mean power utilization", "51%", fmt_pct(meggie.mean)),
        ("emmy peak power (never exceeds)", "85%", fmt_pct(emmy.peak)),
        ("meggie peak power (never exceeds)", "70%", fmt_pct(meggie.peak)),
        ("stranded power >30% on meggie", "yes",
         "yes" if meggie.stranded_fraction > 0.30 else "no"),
        ("emmy stranded fraction", "31%", fmt_pct(emmy.stranded_fraction)),
    ]
    report("F2", "power utilization and stranded power", rows)

    assert emmy.mean < 0.80 and meggie.mean < 0.70
    assert emmy.peak < 0.95
    assert meggie.stranded_fraction > 0.30
