"""A6 — Ablation: which generative mechanisms carry which finding.

DESIGN.md §4 claims specific mechanisms produce specific paper findings.
This bench switches each mechanism off and checks the right finding —
and only that finding — collapses:

* dip-dominated temporal profiles → Fig 7's (σ_t/µ ≈ 10%, yet jobs
  rarely exceed mean+10%) combination;
* workload-imbalance offsets + manufacturing variability → Fig 9/10's
  spatial spread and node-energy imbalance;
* burst-only profiles (the naive alternative) → Fig 7's combination
  becomes impossible (high σ_t forces high above-mean time).
"""

from conftest import cached_dataset, fmt_pct

import repro

SCALE = dict(num_nodes=200, num_users=80, horizon_s=40 * 86400, max_traces=500)


def _dataset(**kwargs):
    return cached_dataset("emmy", **SCALE, **kwargs)


def test_ablation_mechanisms(benchmark, report):
    default = benchmark.pedantic(_dataset, rounds=1, iterations=1)
    flat = _dataset(params_overrides={"temporal_mode": "flat"})
    burst_only = _dataset(params_overrides={"temporal_mode": "burst-only"})
    no_imbalance = _dataset(params_overrides={"spatial_scale": 0.0})
    no_variability = _dataset(variability_sigma=0.0)

    rows = []
    summaries = {}
    for label, ds in [
        ("default", default), ("flat profiles", flat),
        ("burst-only profiles", burst_only),
    ]:
        t = repro.temporal_summary(ds)
        summaries[label] = t
        rows.append(
            (f"{label}: sigma_t/mean | time>10% above",
             "dips reconcile ~10% | ~0",
             f"{fmt_pct(t.mean_temporal_cov)} | "
             f"{fmt_pct(t.mean_frac_time_above_10pct)}")
        )
    spatials = {}
    for label, ds in [
        ("default", default), ("no workload imbalance", no_imbalance),
        ("no manufacturing variability", no_variability),
    ]:
        s = repro.spatial_summary(ds)
        spatials[label] = s
        rows.append(
            (f"{label}: spread/power | energy imb >15%",
             "both mechanisms contribute",
             f"{fmt_pct(s.mean_spread_fraction)} | "
             f"{fmt_pct(s.frac_jobs_energy_imbalance_over_15pct)}")
        )
    report(
        "A6",
        "generative-mechanism ablations",
        rows,
        note="Flat profiles lose the temporal sigma without changing the "
        "above-mean time; burst-only profiles regain the sigma but break "
        "Fig 7b (jobs spend large fractions above mean+10%). Removing "
        "workload imbalance or manufacturing variability each removes "
        "roughly its share of the Fig 9/10 spatial statistics — matching "
        "the paper's attribution of spatial variance to both causes.",
    )

    # Temporal: dips are load-bearing for the Fig 7 combination.
    assert (summaries["flat profiles"].mean_temporal_cov
            < 0.6 * summaries["default"].mean_temporal_cov)
    assert (
        summaries["burst-only profiles"].mean_frac_time_above_10pct
        > 2.0 * summaries["default"].mean_frac_time_above_10pct
    )
    # Spatial: both mechanisms contribute to the spread...
    assert (spatials["no workload imbalance"].mean_spread_fraction
            < 0.6 * spatials["default"].mean_spread_fraction)
    assert (spatials["no manufacturing variability"].mean_spread_fraction
            < spatials["default"].mean_spread_fraction)
    # ...and the energy imbalance needs the static components.
    assert (
        spatials["no workload imbalance"].frac_jobs_energy_imbalance_over_15pct
        < 0.3 * max(0.05, spatials["default"].frac_jobs_energy_imbalance_over_15pct)
    )
