"""F9 — Fig 9: spatial power-consumption CDFs of Emmy's jobs."""

from conftest import fmt_pct, fmt_w

from repro.analysis import spatial_summary


def test_fig9_spatial_cdfs(benchmark, report, emmy_full):
    s = benchmark(spatial_summary, emmy_full)

    rows = [
        ("mean avg spatial spread (9a)", "20 W", fmt_w(s.mean_spread_watts)),
        ("max avg spatial spread (9a)", "up to ~110 W", fmt_w(s.max_spread_watts)),
        ("spread as % of per-node power (9b)", "15%", fmt_pct(s.mean_spread_fraction)),
        ("tail of 9b", "some jobs >40%",
         fmt_pct(float(1.0 - s.spread_fraction_cdf(0.40)))),
        ("runtime above avg spread (9c)", "30%",
         fmt_pct(s.mean_frac_time_above_avg_spread)),
    ]
    report(
        "F9",
        "spatial spread CDFs (Emmy)",
        rows,
        note="9c's paper text is internally inconsistent (mean 30% vs '80% of "
        "jobs over 40%'); we match the mean statement approximately.",
    )

    assert 10.0 < s.mean_spread_watts < 35.0
    assert 0.08 < s.mean_spread_fraction < 0.25
    assert 0.2 < s.mean_frac_time_above_avg_spread < 0.55
