"""F11 — Fig 11: user-level node-hour and energy concentration."""

from conftest import fmt_pct

from repro.analysis import concentration_analysis


def test_fig11_user_concentration(benchmark, report, emmy_full, meggie_full):
    emmy = benchmark(concentration_analysis, emmy_full)
    meggie = concentration_analysis(meggie_full)

    rows = [
        ("emmy top-20% node-hours share", "~85%", fmt_pct(emmy.node_hours_share)),
        ("emmy top-20% energy share", "~85%", fmt_pct(emmy.energy_share)),
        ("meggie top-20% node-hours share", "~85%", fmt_pct(meggie.node_hours_share)),
        ("meggie top-20% energy share", "~85%", fmt_pct(meggie.energy_share)),
        ("emmy top-set overlap", "~90%", fmt_pct(emmy.top_set_overlap)),
        ("meggie top-set overlap", "~90%", fmt_pct(meggie.top_set_overlap)),
    ]
    report("F11", "user concentration", rows)

    for c in (emmy, meggie):
        assert 0.70 < c.node_hours_share <= 1.0
        assert 0.70 < c.energy_share <= 1.0
        assert c.top_set_overlap > 0.75
