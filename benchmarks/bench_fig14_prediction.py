"""F14 — Fig 14: absolute prediction error of BDT, KNN, and FLDA.

Paper headlines: BDT best (90% of predictions <10% error, 75% <5%);
KNN close behind; FLDA weak on Emmy (half its predictions >10% error).
"""

import pytest
from conftest import fmt_pct

from repro.analysis import run_prediction

N_REPEATS = 3  # the paper uses 10; 3 keeps the bench affordable


@pytest.fixture(scope="module")
def results(emmy_full, meggie_full):
    return {
        "emmy": run_prediction(emmy_full, n_repeats=N_REPEATS, seed=0),
        "meggie": run_prediction(meggie_full, n_repeats=N_REPEATS, seed=0),
    }


def test_fig14_prediction_error(benchmark, report, emmy_full, results):
    # Time one representative evaluation round (BDT on Emmy).
    from repro.analysis.prediction import default_models

    bdt_only = {"BDT": default_models()["BDT"]}
    benchmark.pedantic(
        run_prediction,
        args=(emmy_full,),
        kwargs={"models": bdt_only, "n_repeats": 1, "seed": 1},
        rounds=1,
        iterations=1,
    )

    rows = []
    for system, res in results.items():
        for name, r in res.items():
            paper = {
                ("BDT"): "75% <5%, 90% <10%",
                ("KNN"): "worse than BDT",
                ("FLDA"): "poor on emmy (50% >10% err)",
            }[name]
            rows.append(
                (f"{system} {name}", paper,
                 f"{fmt_pct(r.summary.frac_below_5pct)} <5%, "
                 f"{fmt_pct(r.summary.frac_below_10pct)} <10% "
                 f"(mean {fmt_pct(r.summary.mean)})")
            )
    report("F14", "pre-execution power prediction", rows)

    for system, res in results.items():
        bdt, knn, flda = res["BDT"].summary, res["KNN"].summary, res["FLDA"].summary
        assert bdt.frac_below_10pct > knn.frac_below_10pct > flda.frac_below_10pct
        assert bdt.frac_below_10pct > 0.80
        assert bdt.frac_below_5pct > 0.60
    # FLDA's linear boundaries fail hardest on the more diverse Emmy.
    assert (
        results["emmy"]["FLDA"].summary.frac_below_10pct
        < results["emmy"]["BDT"].summary.frac_below_10pct - 0.15
    )
