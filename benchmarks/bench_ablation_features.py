"""A4 — Ablation: feature contribution and deployment-order prediction.

Two questions the paper's random-split protocol leaves open:

1. How much does each pre-execution feature contribute? (RQ8's basis:
   user alone → + nodes → + walltime.)
2. Does the accuracy survive *deployment order* — training only on the
   past, predicting the future (prequential evaluation)?
"""

from conftest import fmt_pct

from repro.ml import DecisionTreeRegressor, FeatureSpec, evaluate_models, evaluate_online


def test_ablation_features_and_online(benchmark, report, emmy_full):
    specs = {
        "user only": FeatureSpec(numeric_columns=()),
        "user + nodes": FeatureSpec(numeric_columns=("nodes",)),
        "user + nodes + walltime": FeatureSpec(),
    }
    summaries = {}
    for label, spec in specs.items():
        results = evaluate_models(
            emmy_full.jobs,
            {"BDT": lambda: DecisionTreeRegressor(min_samples_leaf=3)},
            n_repeats=2,
            feature_spec=spec,
        )
        summaries[label] = results["BDT"].summary

    online = benchmark.pedantic(
        evaluate_online, args=(emmy_full.jobs,), rounds=1, iterations=1
    )

    rows = [
        (f"BDT features: {label}", "accuracy grows with each feature",
         f"{fmt_pct(s.frac_below_10pct)} <10% (mean {fmt_pct(s.mean)})")
        for label, s in summaries.items()
    ]
    rows += [
        ("online hierarchical-mean (<10%)", "usable in deployment order",
         fmt_pct(online.summary.frac_below_10pct)),
        ("online median error", "-", fmt_pct(online.summary.median)),
        ("online learning curve (first/last decile)", "-",
         f"{fmt_pct(float(online.learning_curve[0]))} / "
         f"{fmt_pct(float(online.learning_curve[-1]))}"),
    ]
    report("A4", "feature ablation + prequential evaluation", rows)

    u = summaries["user only"].frac_below_10pct
    un = summaries["user + nodes"].frac_below_10pct
    unw = summaries["user + nodes + walltime"].frac_below_10pct
    assert un > u + 0.02           # nodes add real signal (Fig 13a)
    assert unw > un - 0.01         # walltime never hurts, usually helps
    assert online.summary.frac_below_10pct > 0.6
