"""F4 — Fig 4: key applications' per-node power on both systems.

Headlines: every app draws less (in watts) on Meggie — by up to ~25% —
and the power *ranking* flips across systems (MD-0 vs FASTEST).
"""

import numpy as np
from conftest import fmt_pct, fmt_w

from repro.analysis import app_power_comparison


def test_fig4_app_comparison(benchmark, report, emmy_full, meggie_full):
    comp = benchmark(
        app_power_comparison, {"emmy": emmy_full, "meggie": meggie_full}
    )

    rows = []
    for i, app in enumerate(comp.apps):
        emmy_w, meggie_w = comp.mean_watts[i]
        rows.append(
            (f"{app} (emmy -> meggie)", "lower on meggie",
             f"{fmt_w(emmy_w)} -> {fmt_w(meggie_w)}")
        )
    rows += [
        ("max relative drop", "up to ~25%", fmt_pct(comp.max_relative_drop())),
        ("ranking flips across systems", "yes",
         "yes" if comp.rankings_differ() else "no"),
        ("emmy ranking", "MD-0 above FASTEST",
         " > ".join(comp.ranking("emmy"))),
        ("meggie ranking", "FASTEST above MD-0",
         " > ".join(comp.ranking("meggie"))),
    ]
    report("F4", "per-application cross-system power", rows)

    assert np.all(comp.mean_watts[:, 0] > comp.mean_watts[:, 1])
    assert comp.rankings_differ()
    emmy_rank, meggie_rank = comp.ranking("emmy"), comp.ranking("meggie")
    assert emmy_rank.index("md0") < emmy_rank.index("fastest")
    assert meggie_rank.index("fastest") < meggie_rank.index("md0")
