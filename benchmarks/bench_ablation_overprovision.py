"""A2 — Ablation (Sec 3/6): hardware over-provisioning inside the budget.

Stranded power (>30%) can be harvested by hosting more nodes under the
original facility budget; the sweep shows the throughput gain versus the
sizing quantile (how aggressively the observed draw is trusted).
"""

from conftest import fmt_pct

from repro.policy import evaluate_overprovisioning


def test_ablation_overprovisioning(benchmark, report, emmy_full, meggie_full):
    emmy = benchmark(evaluate_overprovisioning, emmy_full)
    meggie = evaluate_overprovisioning(meggie_full)

    sweep_rows = []
    for q in (0.90, 0.99, 1.00):
        o = evaluate_overprovisioning(emmy_full, sizing_quantile=q)
        sweep_rows.append(
            (f"emmy sizing at p{int(q * 100)}: extra nodes", "-",
             f"+{o.extra_nodes} ({fmt_pct(o.throughput_gain)} gain, "
             f"budget exceeded {fmt_pct(o.budget_exceedance_fraction)} of time)")
        )

    rows = [
        ("emmy supported nodes (p99 sizing)", "> 560",
         f"{emmy.supported_nodes} (+{emmy.extra_nodes})"),
        ("emmy throughput gain", "substantial (stranded 31%)",
         fmt_pct(emmy.throughput_gain)),
        ("meggie supported nodes (p99 sizing)", "> 728",
         f"{meggie.supported_nodes} (+{meggie.extra_nodes})"),
        ("meggie throughput gain", "larger (stranded 49%)",
         fmt_pct(meggie.throughput_gain)),
        *sweep_rows,
    ]
    report("A2", "over-provisioning ablation", rows)

    assert emmy.extra_nodes > 0
    assert meggie.extra_nodes > 0
    # Meggie strands more power, so it gains more from over-provisioning.
    assert meggie.throughput_gain > emmy.throughput_gain
