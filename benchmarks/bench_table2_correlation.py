"""T2 — Table 2: Spearman correlations of job length/size with power."""

from repro.analysis import feature_power_correlations


def test_table2_spearman(benchmark, report, emmy_full, meggie_full):
    emmy = benchmark(feature_power_correlations, emmy_full)
    meggie = feature_power_correlations(meggie_full)

    rows = [
        ("emmy length vs power", "0.42 (p=0.00)",
         f"{emmy['job_length'].statistic:.2f} (p={emmy['job_length'].pvalue:.2g})"),
        ("emmy size vs power", "0.21 (p=0.00)",
         f"{emmy['job_size'].statistic:.2f} (p={emmy['job_size'].pvalue:.2g})"),
        ("meggie length vs power", "0.12 (p~1e-113)",
         f"{meggie['job_length'].statistic:.2f} (p={meggie['job_length'].pvalue:.2g})"),
        ("meggie size vs power", "0.42 (p=0.00)",
         f"{meggie['job_size'].statistic:.2f} (p={meggie['job_size'].pvalue:.2g})"),
    ]
    report("T2", "Spearman correlations (Table 2)", rows)

    # All four correlations positive and significant; the cross-system
    # pattern (Emmy length-driven, Meggie size-driven) holds.
    for result in (*emmy.values(), *meggie.values()):
        assert result.statistic > 0.0
        assert result.pvalue < 1e-6
    assert emmy["job_length"].statistic > meggie["job_length"].statistic
    assert meggie["job_size"].statistic > emmy["job_size"].statistic
