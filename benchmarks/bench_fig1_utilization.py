"""F1 — Fig 1: system utilization of Emmy and Meggie over 5 months."""

from conftest import fmt_pct

from repro.analysis import system_utilization


def test_fig1_system_utilization(benchmark, report, emmy_full, meggie_full):
    emmy = benchmark(system_utilization, emmy_full)
    meggie = system_utilization(meggie_full)

    rows = [
        ("emmy mean system utilization", "87%", fmt_pct(emmy.mean)),
        ("meggie mean system utilization", "80%", fmt_pct(meggie.mean)),
        ("emmy peak utilization", "~100%", fmt_pct(emmy.peak)),
        ("both systems 'often more than 80%'", "yes",
         "yes" if emmy.mean > 0.8 and meggie.mean > 0.75 else "no"),
    ]
    report("F1", "system utilization (5 months)", rows)

    assert 0.80 < emmy.mean < 0.95
    assert 0.72 < meggie.mean < 0.90
