"""F10 — Fig 10: per-node energy imbalance across a job's nodes."""

import numpy as np
from conftest import fmt_pct

from repro.analysis import spatial_summary
from repro.stats.correlation import spearman


def test_fig10_energy_imbalance(benchmark, report, emmy_full):
    s = benchmark(spatial_summary, emmy_full)

    # Paper: the imbalance correlates with the node count of the job.
    traces = [t for t in emmy_full.traces.values() if t.num_nodes >= 2]
    nodes = np.asarray([t.num_nodes for t in traces], dtype=float)
    imbalance = np.asarray([t.energy_imbalance_fraction() for t in traces])
    rho = spearman(nodes, imbalance)

    rows = [
        ("jobs with >15% node-energy diff", ">20%",
         fmt_pct(s.frac_jobs_energy_imbalance_over_15pct)),
        ("imbalance vs job size correlation", "positive (expected)",
         f"rho={rho.statistic:.2f} (p={rho.pvalue:.2g})"),
        ("multi-node jobs analyzed", "-", f"{s.n_jobs}"),
    ]
    report("F10", "node-energy imbalance PDF", rows)

    assert s.frac_jobs_energy_imbalance_over_15pct > 0.15
    assert rho.statistic > 0.1 and rho.pvalue < 0.01
