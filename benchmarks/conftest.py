"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one table/figure of the paper at full
machine scale (560-node Emmy, 728-node Meggie, 152-day window), prints a
paper-vs-measured comparison, and writes the same text to
``benchmarks/results/<exp>.txt``. pytest-benchmark times the analysis
step (not dataset generation, which is shared per session).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.report import comparison_text
from repro.telemetry import JobDataset, generate_dataset

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_SEED = 1


@pytest.fixture(scope="session")
def emmy_full() -> JobDataset:
    """The full 5-month Emmy configuration (paper scale)."""
    return generate_dataset("emmy", seed=BENCH_SEED, max_traces=1500)


@pytest.fixture(scope="session")
def meggie_full() -> JobDataset:
    """The full 5-month Meggie configuration (paper scale)."""
    return generate_dataset("meggie", seed=BENCH_SEED, max_traces=1500)


@pytest.fixture(scope="session")
def report():
    """Callable that renders, prints, and persists one comparison."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(exp_id: str, title: str, rows, note: str | None = None) -> str:
        text = comparison_text(f"{exp_id}: {title}", rows, note=note)
        print(text)
        (RESULTS_DIR / f"{exp_id}.txt").write_text(text + "\n")
        return text

    return _report


def fmt_pct(x: float) -> str:
    return f"{100 * x:.1f}%"


def fmt_w(x: float) -> str:
    return f"{x:.0f} W"
