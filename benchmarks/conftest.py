"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one table/figure of the paper at full
machine scale (560-node Emmy, 728-node Meggie, 152-day window), prints a
paper-vs-measured comparison, and writes the same text to
``<scratch>/results/<exp>.txt``. pytest-benchmark times the analysis
step, not dataset generation: the session-scoped dataset fixtures are
backed by the :mod:`repro.pipeline` artifact cache under the bench
scratch root (see :mod:`tools.bench_paths` — default
``<tempdir>/repro-bench``, overridable with ``$REPRO_BENCH_SCRATCH``),
so only the *first* benchmark session pays the full simulation cost —
every later session loads the same trace in under a second (``make
clean-cache`` forces a rebuild). Nothing is written into the repository
working tree; set ``REPRO_BENCH_RESULTS=benchmarks/results`` to refresh
the committed comparison snapshots deliberately.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from bench_paths import bench_cache_dir, bench_results_dir  # noqa: E402

from repro.analysis.report import comparison_text  # noqa: E402
from repro.pipeline import build_dataset  # noqa: E402
from repro.telemetry import JobDataset  # noqa: E402

RESULTS_DIR = bench_results_dir()
CACHE_DIR = bench_cache_dir()
BENCH_SEED = 1


def cached_dataset(system: str = "emmy", seed: int = BENCH_SEED, **kwargs) -> JobDataset:
    """Build (or load) a dataset through the benchmark artifact cache.

    Accepts the same scale/ablation keyword arguments as
    :func:`repro.telemetry.generate_dataset`.
    """
    return build_dataset(system=system, seed=seed, cache_dir=CACHE_DIR, **kwargs)


@pytest.fixture(scope="session")
def emmy_full() -> JobDataset:
    """The full 5-month Emmy configuration (paper scale), cache-backed."""
    return cached_dataset("emmy", max_traces=1500)


@pytest.fixture(scope="session")
def meggie_full() -> JobDataset:
    """The full 5-month Meggie configuration (paper scale), cache-backed."""
    return cached_dataset("meggie", max_traces=1500)


@pytest.fixture(scope="session")
def report():
    """Callable that renders, prints, and persists one comparison."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _report(exp_id: str, title: str, rows, note: str | None = None) -> str:
        text = comparison_text(f"{exp_id}: {title}", rows, note=note)
        print(text)
        (RESULTS_DIR / f"{exp_id}.txt").write_text(text + "\n")
        return text

    return _report


def fmt_pct(x: float) -> str:
    return f"{100 * x:.1f}%"


def fmt_w(x: float) -> str:
    return f"{x:.0f} W"
