"""F15 — Fig 15: per-user average absolute prediction error (BDT).

Paper: 90% of users see <5% average absolute error — prediction quality
is good across users, not only for the heavy hitters.
"""

import numpy as np
from conftest import fmt_pct

from repro.analysis import run_prediction, user_totals
from repro.analysis.prediction import default_models
from repro.stats.correlation import spearman


def test_fig15_per_user_error(benchmark, report, emmy_full):
    bdt_only = {"BDT": default_models()["BDT"]}
    results = benchmark.pedantic(
        run_prediction,
        args=(emmy_full,),
        kwargs={"models": bdt_only, "n_repeats": 3, "seed": 0},
        rounds=1,
        iterations=1,
    )
    user_ids, mean_errors = results["BDT"].per_user_mean_error()

    # "Good across users": the error must not be concentrated in light
    # users — correlate per-user error with node-hour consumption.
    totals = user_totals(emmy_full)
    nh_by_user = dict(zip(totals["user"].tolist(), totals["node_hours"].tolist()))
    node_hours = np.asarray([nh_by_user[u] for u in user_ids.tolist()])
    rho = spearman(node_hours, mean_errors)

    frac_below_5 = float(np.mean(mean_errors < 0.05))
    frac_below_10 = float(np.mean(mean_errors < 0.10))
    rows = [
        ("users with <5% mean abs error", "90%", fmt_pct(frac_below_5)),
        ("users with <10% mean abs error", "-", fmt_pct(frac_below_10)),
        ("median per-user mean error", "-", fmt_pct(float(np.median(mean_errors)))),
        ("error vs node-hours correlation", "~none (quality across users)",
         f"rho={rho.statistic:.2f}"),
        ("users evaluated", "-", f"{len(user_ids)}"),
    ]
    report(
        "F15",
        "per-user prediction error (BDT)",
        rows,
        note="Our per-user tail is thicker than the paper's 90%-below-5% "
        "because genuinely never-seen configurations (new job classes) "
        "land on every light user; the qualitative claim — low median "
        "error, uncorrelated with user weight — holds.",
    )

    assert float(np.median(mean_errors)) < 0.08
    assert frac_below_10 > 0.6
    assert abs(rho.statistic) < 0.5
