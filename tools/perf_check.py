#!/usr/bin/env python
"""Perf-regression harness for the trace-generation hot path.

Times every stage of ``generate_dataset`` separately (inputs → workload
→ schedule → telemetry → join) and reports per-stage wall time plus
end-to-end throughput (jobs/s, traces/s). Methodology (see
docs/PERFORMANCE.md):

* each rep runs the full pipeline in-process and records per-stage
  times; ``--reps`` reps are taken and the *best* total kept —
  run-to-run variance is dominated by allocator/GC churn, which best-of
  filters out;
* ``gc.collect()`` runs before every rep so earlier reps' garbage
  cannot be charged to later ones;
* outputs are bit-identical across reps by construction (fixed seed),
  so timing reps are also correctness reps.

Usage::

    python tools/perf_check.py                  # measure, print table
    python tools/perf_check.py --update         # rewrite BENCH_dataset.json
    python tools/perf_check.py --check          # CI gate: fail on >25%
                                                # throughput regression
                                                # vs BENCH_dataset.json

``make bench`` wraps ``--update``; ``make bench-check`` wraps
``--check``.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_BASELINE = REPO_ROOT / "BENCH_dataset.json"
STAGES = ("inputs", "workload", "schedule", "telemetry", "join")


def run_once(args: argparse.Namespace) -> dict:
    """One full generate_dataset run with per-stage timing."""
    from repro.scheduler import simulate
    from repro.telemetry.dataset import build_inputs, join_dataset, sample_telemetry
    from repro.workload.generator import WorkloadGenerator

    stages: dict[str, float] = {}
    t0 = time.perf_counter()
    cluster, params = build_inputs(
        args.system, seed=args.seed, num_nodes=args.num_nodes,
        num_users=args.num_users, horizon_s=args.horizon_s,
    )
    stages["inputs"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    generator = WorkloadGenerator(params, cluster.num_nodes, seed=args.seed)
    specs = generator.generate()
    stages["workload"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    scheduled = simulate(specs, cluster.num_nodes, backfill_depth=args.backfill_depth)
    stages["schedule"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    sample = sample_telemetry(
        cluster, scheduled, params.horizon_s,
        seed=args.seed, max_traces=args.max_traces,
    )
    stages["telemetry"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    dataset = join_dataset(cluster, scheduled, params.horizon_s, sample)
    stages["join"] = time.perf_counter() - t0

    total = sum(stages.values())
    return {
        "stages": stages,
        "total_seconds": total,
        "n_jobs": dataset.num_jobs,
        "n_traces": len(dataset.traces),
        "jobs_per_second": dataset.num_jobs / total if total > 0 else float("inf"),
    }


def measure(args: argparse.Namespace) -> dict:
    """Best-of-``args.reps`` measurement of the full pipeline."""
    best: dict | None = None
    for rep in range(args.reps):
        gc.collect()
        result = run_once(args)
        if not args.quiet:
            per_stage = "  ".join(
                f"{s} {result['stages'][s]:.2f}s" for s in STAGES
            )
            print(f"rep {rep + 1}/{args.reps}: total {result['total_seconds']:.2f}s "
                  f"({per_stage})")
        if best is None or result["total_seconds"] < best["total_seconds"]:
            best = result
    assert best is not None
    best["config"] = {
        "system": args.system, "seed": args.seed, "num_nodes": args.num_nodes,
        "num_users": args.num_users, "horizon_s": args.horizon_s,
        "max_traces": args.max_traces, "backfill_depth": args.backfill_depth,
    }
    best["reps"] = args.reps
    for k in STAGES:
        best["stages"][k] = round(best["stages"][k], 4)
    best["total_seconds"] = round(best["total_seconds"], 4)
    best["jobs_per_second"] = round(best["jobs_per_second"], 2)
    return best


def print_report(result: dict) -> None:
    cfg = result["config"]
    print(f"\nsystem {cfg['system']} seed {cfg['seed']}: "
          f"{result['n_jobs']} jobs, {result['n_traces']} traces")
    for stage in STAGES:
        secs = result["stages"][stage]
        share = secs / result["total_seconds"] if result["total_seconds"] else 0.0
        print(f"  {stage:10s} {secs:7.3f}s  {share:5.1%}")
    print(f"  {'total':10s} {result['total_seconds']:7.3f}s  "
          f"{result['jobs_per_second']:,.0f} jobs/s")


def load_baseline(
    result: dict, baseline_path: Path, name: str = "perf-check"
) -> dict | None:
    """Load and config-match a baseline; None (after a message) when unusable.

    Shared by this harness and ``tools/serve_bench.py`` so every bench
    gates the same way: a missing baseline or a configuration mismatch is
    exit-2 territory (the caller maps ``None`` to 2), not a silent pass.
    """
    if not baseline_path.is_file():
        print(f"{name}: no baseline at {baseline_path}; "
              f"run with --update first", file=sys.stderr)
        return None
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("config") != result["config"]:
        print(f"{name}: baseline was recorded with a different configuration; "
              "re-run with matching flags or --update", file=sys.stderr)
        return None
    return baseline


def gate_throughput(
    rate: float,
    base_rate: float,
    tolerance: float,
    unit: str = "jobs/s",
    name: str = "perf-check",
) -> bool:
    """Print the verdict line; True when ``rate`` clears the floor."""
    floor = base_rate * (1.0 - tolerance)
    verdict = "OK" if rate >= floor else "REGRESSION"
    print(f"{name}: {rate:,.0f} {unit} vs baseline {base_rate:,.0f} {unit} "
          f"(floor {floor:,.0f} at -{tolerance:.0%}) -> {verdict}")
    return rate >= floor


def check(result: dict, baseline_path: Path, tolerance: float) -> int:
    """CI gate: fail when throughput regressed more than ``tolerance``."""
    baseline = load_baseline(result, baseline_path)
    if baseline is None:
        return 2
    if not gate_throughput(
        result["jobs_per_second"], baseline["jobs_per_second"], tolerance
    ):
        slow = [
            s for s in STAGES
            if result["stages"][s] > baseline["stages"].get(s, 0.0) * (1 + tolerance)
        ]
        if slow:
            print(f"perf-check: stage(s) slower than baseline: {', '.join(slow)}",
                  file=sys.stderr)
        return 1
    return 0


def update(result: dict, baseline_path: Path, pre_pr_seconds: float | None) -> None:
    """Write the new baseline, carrying the pre-PR reference forward."""
    if pre_pr_seconds is not None:
        result["pre_pr_baseline"] = {"total_seconds": pre_pr_seconds}
    elif baseline_path.is_file():
        old = json.loads(baseline_path.read_text())
        if "pre_pr_baseline" in old:
            result["pre_pr_baseline"] = old["pre_pr_baseline"]
    if "pre_pr_baseline" in result:
        pre = result["pre_pr_baseline"]["total_seconds"]
        result["pre_pr_baseline"]["speedup"] = round(pre / result["total_seconds"], 2)
    baseline_path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"perf-check: wrote {baseline_path}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--system", default="emmy", choices=("emmy", "meggie"))
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--num-nodes", type=int, default=None)
    parser.add_argument("--num-users", type=int, default=None)
    parser.add_argument("--horizon-s", type=int, default=None)
    parser.add_argument("--max-traces", type=int, default=2000)
    parser.add_argument("--backfill-depth", type=int, default=100)
    parser.add_argument("--reps", type=int, default=3,
                        help="best-of-N repetitions (default 3)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional throughput drop for --check")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline JSON path (default: BENCH_dataset.json)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the baseline; exit 1 on regression")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline with this measurement")
    parser.add_argument("--pre-pr-seconds", type=float, default=None,
                        help="record this pre-optimization wall time in the baseline")
    parser.add_argument("--json", type=Path, default=None,
                        help="also write the measurement JSON here")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    result = measure(args)
    if not args.quiet:
        print_report(result)
    if args.json is not None:
        args.json.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    if args.update:
        update(result, args.baseline, args.pre_pr_seconds)
    if args.check:
        return check(result, args.baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
