#!/usr/bin/env python
"""Chaos soak runner: serve under an armed fault plan, audit recovery.

Drives :func:`repro.faults.chaos.run_soak` — N HTTP chaos clients plus a
pipeline-churn thread against a scratch service while the all-points
:func:`~repro.faults.plan.soak_plan` is armed — then audits the run:

* zero lost requests, zero stuck futures;
* every injection point fired at least once;
* fire counts exactly match the plan's deterministic schedule
  (same seed ⇒ same fault schedule);
* error rate bounded (500s / no-answers over total);
* once disarmed, predictions are bit-identical to the pre-chaos
  baseline;
* metric invariants hold (docs/OBSERVABILITY.md): this run's delta of
  ``repro_requests_total`` equals the sum of its outcome counters, and
  the ``repro_fault_fires_total`` deltas match the injector's counts.

Usage::

    PYTHONPATH=src python tools/chaos_soak.py                # full soak
    PYTHONPATH=src python tools/chaos_soak.py --duration 5   # smoke
    PYTHONPATH=src python tools/chaos_soak.py --json report.json
    PYTHONPATH=src python tools/chaos_soak.py --trace soak-trace.jsonl

Exit status 0 iff the audit passed — this is what ``make chaos-soak``
and ``make chaos-smoke`` gate on.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults.chaos import run_soak  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0,
                        help="fault-plan seed (same seed = same schedule)")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="seconds of armed chaos traffic")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent HTTP chaos clients")
    parser.add_argument("--rate", type=float, default=0.15,
                        help="per-call fire probability at every point")
    parser.add_argument("--max-error-rate", type=float, default=0.05,
                        help="allowed (500 + lost) / total bound")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="scratch artifact cache (default: a temp dir)")
    parser.add_argument("--json", type=Path, default=None,
                        help="also write the full report as JSON here")
    parser.add_argument("--trace", type=Path, default=None,
                        help="append trace spans (JSONL) here; summarize "
                        "with `repro obs summary` (docs/OBSERVABILITY.md)")
    args = parser.parse_args(argv)

    if args.trace is not None:
        from repro.obs.tracing import configure_tracing

        args.trace.parent.mkdir(parents=True, exist_ok=True)
        configure_tracing(args.trace)

    if args.cache_dir is not None:
        args.cache_dir.mkdir(parents=True, exist_ok=True)
        report = _run(args, args.cache_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            report = _run(args, Path(tmp))

    print(report.summary())
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        print(f"report: {args.json}")
    return 0 if report.passed else 1


def _run(args: argparse.Namespace, cache_dir: Path):
    print(f"soaking for {args.duration:.0f}s: seed {args.seed}, "
          f"{args.clients} client(s), rate {args.rate} …", flush=True)
    return run_soak(
        seed=args.seed,
        duration_s=args.duration,
        n_clients=args.clients,
        rate=args.rate,
        cache_dir=cache_dir,
        max_error_rate=args.max_error_rate,
    )


if __name__ == "__main__":
    sys.exit(main())
