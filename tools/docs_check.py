#!/usr/bin/env python
"""Documentation gate: every public symbol is documented, twice.

Fails (exit 1) if any name in ``repro.__all__``:

* lacks a docstring (module-level constants are exempt — their meaning
  is documented where they are defined and in docs/API.md), or
* does not appear in docs/API.md.

Also checks the ``repro.pipeline.__all__`` surface for docstrings and
coverage in docs/PIPELINE.md, and that every module listed in the
package docstring's layer map has a module docstring; that every
top-level module under ``src/repro`` appears in
docs/ARCHITECTURE.md's module index; that the serving surface
(``repro.serve.__all__``) is covered by docs/SERVICE.md; that the
model-lifecycle surface (``repro.serve.lifecycle.__all__``) is covered
by docs/LIFECYCLE.md; that the incident-benchmark surface
(``repro.incidents.__all__``) is covered by docs/INCIDENTS.md; and that
the heterogeneous-scenario catalog (every registered system, every
evaluation track, every exit-code constant) is covered by
docs/SCENARIOS.md. Run via ``make docs-check``.
"""

from __future__ import annotations

import importlib
import inspect
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
API_DOC = REPO_ROOT / "docs" / "API.md"
PIPELINE_DOC = REPO_ROOT / "docs" / "PIPELINE.md"
FAULTS_DOC = REPO_ROOT / "docs" / "FAULTS.md"
OBS_DOC = REPO_ROOT / "docs" / "OBSERVABILITY.md"
ARCH_DOC = REPO_ROOT / "docs" / "ARCHITECTURE.md"
SERVICE_DOC = REPO_ROOT / "docs" / "SERVICE.md"
LIFECYCLE_DOC = REPO_ROOT / "docs" / "LIFECYCLE.md"
INCIDENTS_DOC = REPO_ROOT / "docs" / "INCIDENTS.md"
SCENARIOS_DOC = REPO_ROOT / "docs" / "SCENARIOS.md"
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"


def check_docstrings(module_name: str) -> list[str]:
    """Names in ``<module>.__all__`` whose objects lack a docstring."""
    module = importlib.import_module(module_name)
    missing = []
    for name in module.__all__:
        obj = getattr(module, name)
        if not (inspect.isclass(obj) or callable(obj) or inspect.ismodule(obj)):
            continue  # constants (EMMY, MEGGIE, version strings, ...)
        if not inspect.getdoc(obj):
            missing.append(f"{module_name}.{name}")
    return missing


def check_api_doc() -> list[str]:
    """Names in ``repro.__all__`` that docs/API.md never mentions."""
    if not API_DOC.is_file():
        return ["docs/API.md is missing entirely"]
    text = API_DOC.read_text()
    module = importlib.import_module("repro")
    return [name for name in module.__all__ if name not in text]


def check_pipeline_doc() -> list[str]:
    """The pipeline surface must be covered by docs/PIPELINE.md."""
    if not PIPELINE_DOC.is_file():
        return ["docs/PIPELINE.md is missing entirely"]
    text = PIPELINE_DOC.read_text()
    module = importlib.import_module("repro.pipeline")
    return [name for name in module.__all__ if name not in text]


def check_faults_doc() -> list[str]:
    """The fault-injection surface must be covered by docs/FAULTS.md."""
    if not FAULTS_DOC.is_file():
        return ["docs/FAULTS.md is missing entirely"]
    text = FAULTS_DOC.read_text()
    module = importlib.import_module("repro.faults")
    return [name for name in module.__all__ if name not in text]


def check_obs_doc() -> list[str]:
    """The observability surface must be covered by docs/OBSERVABILITY.md."""
    if not OBS_DOC.is_file():
        return ["docs/OBSERVABILITY.md is missing entirely"]
    text = OBS_DOC.read_text()
    module = importlib.import_module("repro.obs")
    return [name for name in module.__all__ if name not in text]


def check_architecture_doc() -> list[str]:
    """Every top-level repro module must appear in ARCHITECTURE.md.

    The module index in docs/ARCHITECTURE.md is the map a new
    contributor navigates by; a module that exists on disk but not in
    the map is undiscoverable. Private modules (``_version``) and the
    ``__main__`` shim are exempt.
    """
    if not ARCH_DOC.is_file():
        return ["docs/ARCHITECTURE.md is missing entirely"]
    text = ARCH_DOC.read_text()
    missing = []
    for entry in sorted(PACKAGE_ROOT.iterdir()):
        if entry.name.startswith("_"):
            continue
        if entry.is_dir():
            name = entry.name
        elif entry.suffix == ".py":
            name = entry.stem
        else:
            continue
        if f"repro.{name}" not in text:
            missing.append(name)
    return missing


def check_service_doc() -> list[str]:
    """The serving surface must be covered by docs/SERVICE.md."""
    if not SERVICE_DOC.is_file():
        return ["docs/SERVICE.md is missing entirely"]
    text = SERVICE_DOC.read_text()
    module = importlib.import_module("repro.serve")
    return [name for name in module.__all__ if name not in text]


def check_lifecycle_doc() -> list[str]:
    """The model-lifecycle surface must be covered by docs/LIFECYCLE.md."""
    if not LIFECYCLE_DOC.is_file():
        return ["docs/LIFECYCLE.md is missing entirely"]
    text = LIFECYCLE_DOC.read_text()
    module = importlib.import_module("repro.serve.lifecycle")
    return [name for name in module.__all__ if name not in text]


def check_incidents_doc() -> list[str]:
    """The incident-benchmark surface must be covered by docs/INCIDENTS.md."""
    if not INCIDENTS_DOC.is_file():
        return ["docs/INCIDENTS.md is missing entirely"]
    text = INCIDENTS_DOC.read_text()
    module = importlib.import_module("repro.incidents")
    return [name for name in module.__all__ if name not in text]


def check_scenarios_doc() -> list[str]:
    """The scenario catalog must be covered by docs/SCENARIOS.md.

    Source docstrings and serve-time error messages point users at
    docs/SCENARIOS.md for every heterogeneous extension, so the doc
    must name every registered system, every evaluation track, and
    every exit-code constant of the failure model.
    """
    if not SCENARIOS_DOC.is_file():
        return ["docs/SCENARIOS.md is missing entirely"]
    text = SCENARIOS_DOC.read_text()
    cluster = importlib.import_module("repro.cluster")
    tracks = importlib.import_module("repro.ml.tracks")
    failures = importlib.import_module("repro.workload.failures")
    missing = [f"system `{name}`" for name in cluster.known_systems()
               if f"`{name}`" not in text]
    missing += [f"track `{name}`" for name in tracks.known_tracks()
                if f"`{name}`" not in text]
    missing += [f"exit code {code}" for code in failures.EXIT_CODES
                if f"`{code}`" not in text]
    return missing


def main() -> int:
    problems: list[str] = []
    for module_name in ("repro", "repro.pipeline", "repro.faults", "repro.obs",
                        "repro.serve", "repro.incidents"):
        for name in check_docstrings(module_name):
            problems.append(f"missing docstring: {name}")
    for name in check_api_doc():
        problems.append(f"absent from docs/API.md: repro.{name}")
    for name in check_pipeline_doc():
        problems.append(f"absent from docs/PIPELINE.md: repro.pipeline.{name}")
    for name in check_faults_doc():
        problems.append(f"absent from docs/FAULTS.md: repro.faults.{name}")
    for name in check_obs_doc():
        problems.append(f"absent from docs/OBSERVABILITY.md: repro.obs.{name}")
    for name in check_architecture_doc():
        problems.append(f"absent from docs/ARCHITECTURE.md: repro.{name}")
    for name in check_service_doc():
        problems.append(f"absent from docs/SERVICE.md: repro.serve.{name}")
    for name in check_lifecycle_doc():
        problems.append(
            f"absent from docs/LIFECYCLE.md: repro.serve.lifecycle.{name}"
        )
    for name in check_incidents_doc():
        problems.append(f"absent from docs/INCIDENTS.md: repro.incidents.{name}")
    for name in check_scenarios_doc():
        problems.append(f"absent from docs/SCENARIOS.md: {name}")

    if problems:
        print(f"docs-check: {len(problems)} problem(s)", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    n = len(importlib.import_module("repro").__all__)
    print(f"docs-check: OK ({n} public symbols documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
