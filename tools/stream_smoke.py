#!/usr/bin/env python
"""CI smoke for the streaming dataset builder (byte-identity end to end).

Drives the real CLI twice — ``repro pipeline run --stream --chunk-jobs N``
and the monolithic equivalent — into two throwaway caches, then asserts
the committed dataset artifacts are **byte-identical** (every file except
``meta.json``, which carries timestamps). This is the streaming
contract's cheapest end-to-end enforcement: same flags, same seed, same
bytes, regardless of chunking (docs/PIPELINE.md "Streaming builds").

The streaming run's manifest is written to ``--manifest`` (default
``stream-smoke-manifest.json``) so CI can upload it when the gate fails.

Usage::

    python tools/stream_smoke.py              # default small shard
    make stream-smoke                         # same, via make
"""

from __future__ import annotations

import argparse
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run_cli(cache_dir: Path, shard_flags: list[str], *,
             stream: bool, chunk_jobs: int, manifest: Path | None) -> None:
    cmd = [sys.executable, "-m", "repro", "pipeline", "run",
           "--cache-dir", str(cache_dir), *shard_flags]
    if stream:
        cmd += ["--stream", "--chunk-jobs", str(chunk_jobs)]
    if manifest is not None:
        cmd += ["--manifest", str(manifest)]
    subprocess.run(cmd, check=True,
                   env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})


def dataset_digest(cache_dir: Path) -> tuple[str, list[str]]:
    """SHA-256 over the single dataset entry's files (meta.json excluded)."""
    stage_dir = cache_dir / "dataset"
    entries = [p for p in stage_dir.iterdir() if p.is_dir()]
    if len(entries) != 1:
        raise SystemExit(
            f"stream-smoke: expected one dataset entry in {stage_dir}, "
            f"found {len(entries)}"
        )
    names: list[str] = []
    h = hashlib.sha256()
    for path in sorted(entries[0].iterdir()):
        if path.name == "meta.json":
            continue
        names.append(path.name)
        h.update(path.name.encode())
        h.update(path.read_bytes())
    return h.hexdigest(), names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--system", default="emmy",
        choices=("alex", "emmy", "meggie", "woody"),
    )
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--num-nodes", type=int, default=64)
    parser.add_argument("--num-users", type=int, default=32)
    # Sized so the default shard spans several chunks at --chunk-jobs
    # 2000 — a single-chunk run would not cross any chunk boundary.
    parser.add_argument("--horizon-days", type=float, default=120)
    parser.add_argument("--max-traces", type=int, default=32)
    parser.add_argument("--chunk-jobs", type=int, default=2000)
    parser.add_argument("--manifest", type=Path,
                        default=Path("stream-smoke-manifest.json"))
    args = parser.parse_args(argv)

    shard_flags = [
        "--system", args.system, "--seed", str(args.seed),
        "--num-nodes", str(args.num_nodes), "--num-users", str(args.num_users),
        "--horizon-days", str(args.horizon_days),
        "--max-traces", str(args.max_traces),
    ]
    tmp = Path(tempfile.mkdtemp(prefix="stream-smoke-"))
    try:
        _run_cli(tmp / "stream", shard_flags, stream=True,
                 chunk_jobs=args.chunk_jobs, manifest=args.manifest)
        _run_cli(tmp / "mono", shard_flags, stream=False,
                 chunk_jobs=0, manifest=None)
        stream_digest, stream_files = dataset_digest(tmp / "stream")
        mono_digest, mono_files = dataset_digest(tmp / "mono")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    if stream_files != mono_files:
        print(f"stream-smoke: file sets differ: streaming {stream_files} "
              f"vs monolithic {mono_files}", file=sys.stderr)
        return 1
    if stream_digest != mono_digest:
        print(f"stream-smoke: BYTE MISMATCH — streaming {stream_digest} "
              f"vs monolithic {mono_digest} over {stream_files}",
              file=sys.stderr)
        return 1
    print(f"stream-smoke: byte-identical over {stream_files} "
          f"(sha256 {stream_digest[:16]}…, chunk_jobs={args.chunk_jobs})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
