#!/usr/bin/env python
"""Coverage gate: run the tier-1 suite under pytest-cov when available.

``make coverage`` runs this. On CI (and any dev box with pytest-cov
installed) it runs ``pytest --cov=repro --cov-fail-under=<floor>`` so a
coverage regression fails the job; the floor lives in
``pyproject.toml`` (``[tool.coverage.report] fail_under``) so there is
exactly one number to bump. On boxes without pytest-cov — the
reproduction deliberately keeps its runtime dependency-free — it
prints a skip notice and exits 0 so ``make coverage`` never turns a
missing dev tool into a red target.

Usage::

    python tools/coverage_gate.py              # gate at the pyproject floor
    python tools/coverage_gate.py --floor 80   # override the floor
    python tools/coverage_gate.py --xml cov.xml  # also write XML (CI artifact)
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_FLOOR = 70


def _floor_from_pyproject() -> int:
    """Read [tool.coverage.report] fail_under; fall back to the default."""
    try:
        import tomllib
    except ModuleNotFoundError:  # pragma: no cover - py<3.11
        return DEFAULT_FLOOR
    try:
        with open(REPO_ROOT / "pyproject.toml", "rb") as fh:
            config = tomllib.load(fh)
        return int(config["tool"]["coverage"]["report"]["fail_under"])
    except (OSError, KeyError, ValueError, TypeError):
        return DEFAULT_FLOOR


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--floor", type=int, default=None,
                        help="minimum line coverage percent "
                        "(default: pyproject [tool.coverage.report] fail_under)")
    parser.add_argument("--xml", type=Path, default=None,
                        help="also write a coverage XML report here")
    args = parser.parse_args(argv)

    if importlib.util.find_spec("pytest_cov") is None:
        print("coverage: pytest-cov not installed; skipping the gate "
              "(CI installs it — see .github/workflows/ci.yml)")
        return 0

    floor = args.floor if args.floor is not None else _floor_from_pyproject()
    cmd = [
        sys.executable, "-m", "pytest", "-x", "-q",
        "--cov=repro", f"--cov-fail-under={floor}",
        "--cov-report=term",
    ]
    if args.xml is not None:
        cmd.append(f"--cov-report=xml:{args.xml}")
    print(f"coverage: gating at >= {floor}% line coverage")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(cmd, cwd=REPO_ROOT, env=env).returncode


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
