"""Scratch locations for the benchmark and serving harnesses.

The bench fixtures and the serve-bench harness need two writable
directories: an artifact cache for the (expensive) paper-scale datasets
and a results directory for the comparison text files. Neither belongs
in the repository working tree — a `make bench-smoke` must not dirty
`git status` or leave gigabytes of cache next to the sources — so both
default to a per-user directory under the system temp dir and are
overridable by environment variable:

``REPRO_BENCH_SCRATCH``
    Root for everything (default ``<tempdir>/repro-bench``).
``REPRO_BENCH_RESULTS``
    Results directory (default ``<scratch>/results``). Point this at
    ``benchmarks/results`` to refresh the committed comparison
    snapshots deliberately.

The scratch cache survives across sessions (temp dirs persist until
reboot / cleanup), so repeated bench runs still reuse the cached
datasets exactly as before — only the *location* moved out of the
repository.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

SCRATCH_ENV_VAR = "REPRO_BENCH_SCRATCH"
RESULTS_ENV_VAR = "REPRO_BENCH_RESULTS"

__all__ = [
    "SCRATCH_ENV_VAR",
    "RESULTS_ENV_VAR",
    "bench_scratch_root",
    "bench_cache_dir",
    "bench_results_dir",
]


def bench_scratch_root() -> Path:
    """The bench scratch root (``$REPRO_BENCH_SCRATCH`` or temp)."""
    env = os.environ.get(SCRATCH_ENV_VAR)
    if env:
        return Path(env)
    return Path(tempfile.gettempdir()) / "repro-bench"


def bench_cache_dir() -> Path:
    """The artifact-cache root bench datasets build through (created)."""
    path = bench_scratch_root() / "cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def bench_results_dir() -> Path:
    """Where bench comparison text files are written (created)."""
    env = os.environ.get(RESULTS_ENV_VAR)
    path = Path(env) if env else bench_scratch_root() / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path
