#!/usr/bin/env python
"""CI smoke for the heterogeneous GPU/ML scenario stack (docs/SCENARIOS.md).

Three gates in one tool, run against a small GPU-cluster shard:

1. **Byte-identity** — drives the real CLI twice (``repro pipeline run
   --stream`` and the monolithic equivalent) into throwaway caches and
   asserts the committed dataset artifacts are byte-identical (every
   file except ``meta.json``). Same contract as ``stream_smoke.py``,
   on a system whose builds exercise the GPU sampler and the failure
   model.
2. **Track grading** — loads the dataset and runs both heterogeneous
   evaluation tracks (``gpu_power`` board-power regression and
   ``failures`` Brier-graded classification) through the paper's
   repeated-split protocol, gating each on a loose sanity ceiling.
3. **Baseline check** (``--check``) — compares digests and metrics
   against the committed ``SCORECARD_gpu.json`` (regenerate with
   ``--update``), so metric drift shows up as a diff, not silently.

The scorecard of the run lands in ``--json`` (default
``gpu-smoke.json``); when any gate fails, a failure-artifact manifest
(``gpu-smoke-artifacts.json``) lists everything kept for CI upload.

Usage::

    python tools/gpu_smoke.py                 # default small alex shard
    python tools/gpu_smoke.py --check         # also diff vs committed baseline
    python tools/gpu_smoke.py --update        # rewrite SCORECARD_gpu.json
    make gpu-smoke                            # CI entry point
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "SCORECARD_gpu.json"

# Loose sanity ceilings — a broken feature path or a degenerate model
# blows well past these; normal seed-to-seed variation does not.
GPU_MEAN_ERR_CEILING = 0.60  # mean absolute percentage error
FAILURE_BRIER_CEILING = 0.25  # mean Brier score (chance at 50% = 0.25)
METRIC_TOLERANCE = 1e-6  # baseline comparison (bit-deterministic builds)


def _run_cli(cache_dir: Path, shard_flags: list[str], *,
             stream: bool, chunk_jobs: int) -> None:
    cmd = [sys.executable, "-m", "repro", "pipeline", "run",
           "--cache-dir", str(cache_dir), *shard_flags]
    if stream:
        cmd += ["--stream", "--chunk-jobs", str(chunk_jobs)]
    subprocess.run(cmd, check=True,
                   env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})


def dataset_digest(cache_dir: Path) -> tuple[str, list[str]]:
    """SHA-256 over the single dataset entry's files (meta.json excluded)."""
    stage_dir = cache_dir / "dataset"
    entries = [p for p in stage_dir.iterdir() if p.is_dir()]
    if len(entries) != 1:
        raise SystemExit(
            f"gpu-smoke: expected one dataset entry in {stage_dir}, "
            f"found {len(entries)}"
        )
    names: list[str] = []
    h = hashlib.sha256()
    for path in sorted(entries[0].iterdir()):
        if path.name == "meta.json":
            continue
        names.append(path.name)
        h.update(path.name.encode())
        h.update(path.read_bytes())
    return h.hexdigest(), names


def _grade_tracks(cache_dir: Path, args) -> dict:
    """Run both heterogeneous tracks on the cached dataset."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.analysis import run_failure_classification, run_gpu_prediction
    from repro.pipeline import build_dataset

    dataset = build_dataset(
        system=args.system, seed=args.seed, num_users=args.num_users,
        horizon_s=int(args.horizon_days * 86400),
        max_traces=args.max_traces, cache_dir=cache_dir,
    )
    jobs = dataset.jobs
    report = {
        "n_jobs": dataset.num_jobs,
        "n_gpu_jobs": int((jobs["gpus"] > 0).sum()),
        "failure_rate": round(float(jobs["failed"].astype(float).mean()), 6),
        "tracks": {},
    }
    gpu = run_gpu_prediction(dataset, n_repeats=args.repeats, seed=args.seed)
    fail = run_failure_classification(
        dataset, n_repeats=args.repeats, seed=args.seed
    )
    for track_name, results in (("gpu_power", gpu), ("failures", fail)):
        report["tracks"][track_name] = {
            name: {"mean_err": round(float(r.summary.mean), 6),
                   "n": int(r.summary.n)}
            for name, r in results.items()
        }
    return report


def _check_ceilings(report: dict) -> list[str]:
    problems = []
    gpu_bdt = report["tracks"]["gpu_power"]["BDT"]["mean_err"]
    if gpu_bdt > GPU_MEAN_ERR_CEILING:
        problems.append(
            f"gpu_power BDT mean err {gpu_bdt:.3f} > {GPU_MEAN_ERR_CEILING}"
        )
    fail_bdt = report["tracks"]["failures"]["BDT"]["mean_err"]
    if fail_bdt > FAILURE_BRIER_CEILING:
        problems.append(
            f"failures BDT Brier {fail_bdt:.3f} > {FAILURE_BRIER_CEILING}"
        )
    return problems


def _check_baseline(report: dict) -> list[str]:
    if not BASELINE_PATH.exists():
        return [f"no committed baseline at {BASELINE_PATH} "
                "(run with --update to create it)"]
    baseline = json.loads(BASELINE_PATH.read_text())
    problems = []
    if baseline.get("digest") != report["digest"]:
        problems.append(
            f"dataset digest drifted: baseline {baseline.get('digest')!r} "
            f"vs current {report['digest']!r}"
        )
    for track, models in baseline.get("tracks", {}).items():
        for model, entry in models.items():
            current = (
                report["tracks"].get(track, {}).get(model, {}).get("mean_err")
            )
            if current is None:
                problems.append(f"baseline track {track}/{model} missing "
                                "from current run")
            elif abs(current - entry["mean_err"]) > METRIC_TOLERANCE:
                problems.append(
                    f"{track}/{model} mean err drifted: "
                    f"baseline {entry['mean_err']} vs current {current}"
                )
    return problems


def _write_failure_manifest(kept: list[Path], problems: list[str]) -> Path:
    """Record what survived for CI's upload-on-failure step."""
    manifest = Path("gpu-smoke-artifacts.json")
    manifest.write_text(json.dumps(
        {
            "problems": problems,
            "artifacts": [str(p) for p in kept if p.exists()],
        },
        indent=2, sort_keys=True,
    ) + "\n")
    return manifest


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--system", default="alex", choices=("alex", "woody"),
                        help="GPU-carrying system to build (docs/SCENARIOS.md)")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--num-users", type=int, default=24)
    # Sized to span several chunks at the default --chunk-jobs and to
    # clear both tracks' minimum row counts, while staying CI-cheap.
    parser.add_argument("--horizon-days", type=float, default=12)
    parser.add_argument("--max-traces", type=int, default=0)
    parser.add_argument("--chunk-jobs", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--json", type=Path, default=Path("gpu-smoke.json"),
                        help="write the run's scorecard here")
    parser.add_argument("--check", action="store_true",
                        help="also compare against the committed "
                        f"{BASELINE_PATH.name}")
    parser.add_argument("--update", action="store_true",
                        help=f"rewrite {BASELINE_PATH.name} from this run")
    args = parser.parse_args(argv)

    shard_flags = [
        "--system", args.system, "--seed", str(args.seed),
        "--num-users", str(args.num_users),
        "--horizon-days", str(args.horizon_days),
        "--max-traces", str(args.max_traces),
    ]
    tmp = Path(tempfile.mkdtemp(prefix="gpu-smoke-"))
    problems: list[str] = []
    try:
        _run_cli(tmp / "stream", shard_flags, stream=True,
                 chunk_jobs=args.chunk_jobs)
        _run_cli(tmp / "mono", shard_flags, stream=False, chunk_jobs=0)
        stream_digest, stream_files = dataset_digest(tmp / "stream")
        mono_digest, mono_files = dataset_digest(tmp / "mono")
        if stream_files != mono_files:
            problems.append(f"file sets differ: streaming {stream_files} "
                            f"vs monolithic {mono_files}")
        elif stream_digest != mono_digest:
            problems.append(f"BYTE MISMATCH: streaming {stream_digest} "
                            f"vs monolithic {mono_digest}")

        report = _grade_tracks(tmp / "mono", args)
        report["system"] = args.system
        report["seed"] = args.seed
        report["digest"] = mono_digest
        report["files"] = mono_files
        args.json.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        problems += _check_ceilings(report)
        if args.update:
            BASELINE_PATH.write_text(
                json.dumps(report, indent=2, sort_keys=True) + "\n"
            )
            print(f"gpu-smoke: baseline rewritten at {BASELINE_PATH}")
        elif args.check:
            problems += _check_baseline(report)
    finally:
        if problems:
            manifest = _write_failure_manifest([args.json], problems)
            print(f"gpu-smoke: kept failure artifacts "
                  f"(manifest {manifest})", file=sys.stderr)
        shutil.rmtree(tmp, ignore_errors=True)

    if problems:
        for problem in problems:
            print(f"gpu-smoke: {problem}", file=sys.stderr)
        return 1
    gpu = json.loads(args.json.read_text())
    tracks = gpu["tracks"]
    print(f"gpu-smoke: byte-identical over {gpu['files']} "
          f"(sha256 {gpu['digest'][:16]}…, chunk_jobs={args.chunk_jobs})")
    print(f"gpu-smoke: {gpu['n_jobs']} jobs ({gpu['n_gpu_jobs']} on boards, "
          f"failure rate {gpu['failure_rate']:.1%}); "
          f"gpu_power BDT err {tracks['gpu_power']['BDT']['mean_err']:.3f}, "
          f"failures BDT Brier {tracks['failures']['BDT']['mean_err']:.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
