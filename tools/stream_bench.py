#!/usr/bin/env python
"""Perf + memory gate for the streaming (chunked) dataset builder.

Builds a million-plus-job dataset with ``repro.pipeline.stream_shard``
into a throwaway cache and records end-to-end throughput (jobs/s) and
peak RSS. The measurement runs in a **fresh subprocess** so
``ru_maxrss`` reflects only the streaming build — not whatever the
parent interpreter touched before (methodology: docs/PERFORMANCE.md).

Two gates, both enforced by ``--check``:

* relative: throughput must stay within ``--tolerance`` of the
  committed ``BENCH_stream.json`` baseline (same shape as the
  ``perf_check.py`` gate);
* absolute: throughput must clear ``--min-jobs-per-second`` (default
  15,000) and peak RSS must stay under ``--max-rss-gib`` (default
  2 GiB) — the bounded-memory contract, not just a no-regression check.

Usage::

    python tools/stream_bench.py                 # measure, print table
    python tools/stream_bench.py --update        # rewrite BENCH_stream.json
    python tools/stream_bench.py --check         # CI gate

``make bench-stream`` wraps ``--update``; ``make bench-stream-check``
wraps ``--check``.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tools"))

from perf_check import gate_throughput, load_baseline  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "BENCH_stream.json"
GIB = 1024**3


def worker(config: dict) -> dict:
    """One streaming build in this (fresh) process; returns the record."""
    from repro.obs.metrics import peak_rss_bytes
    from repro.pipeline import ArtifactCache, ShardConfig, stream_shard

    shard = ShardConfig(
        system=config["system"], seed=config["seed"],
        num_nodes=config["num_nodes"], num_users=config["num_users"],
        horizon_s=config["horizon_s"], max_traces=config["max_traces"],
    )
    with tempfile.TemporaryDirectory(prefix="stream-bench-") as tmp:
        t0 = time.perf_counter()
        report = stream_shard(
            shard, ArtifactCache(tmp),
            chunk_jobs=config["chunk_jobs"],
            compact_workers=config["compact_workers"],
        )
        total = time.perf_counter() - t0
    stage_seconds: dict[str, float] = {}
    n_chunks = 0
    for timing in report.stages:
        stage_seconds[timing.stage] = round(
            stage_seconds.get(timing.stage, 0.0) + timing.seconds, 4
        )
        n_chunks += timing.stage == "chunk"
    return {
        "config": config,
        "stages": stage_seconds,
        "n_jobs": report.n_jobs,
        "n_traces": report.n_traces,
        "n_chunks": n_chunks,
        "total_seconds": round(total, 4),
        "jobs_per_second": round(report.n_jobs / total, 2),
        "peak_rss_bytes": peak_rss_bytes(),
    }


def measure(args: argparse.Namespace) -> dict:
    """Best-of-``--reps`` runs, each in a fresh subprocess.

    The subprocess keeps ``ru_maxrss`` honest (the build's alone, not the
    parent's); best-of filters out the run-to-run noise of a shared box,
    same as ``perf_check.py``. Peak RSS is reported as the *maximum*
    across reps — the memory contract must hold on every run, not just
    the fastest one.
    """
    config = {
        "system": args.system, "seed": args.seed, "num_nodes": args.num_nodes,
        "num_users": args.num_users, "horizon_s": args.horizon_s,
        "max_traces": args.max_traces, "chunk_jobs": args.chunk_jobs,
        "compact_workers": args.compact_workers,
    }
    best: dict | None = None
    worst_rss = 0
    for rep in range(args.reps):
        with tempfile.NamedTemporaryFile("r", suffix=".json") as out:
            subprocess.run(
                [sys.executable, __file__, "--worker", out.name,
                 "--worker-config", json.dumps(config)],
                check=True,
            )
            result = json.load(out)
        print(f"rep {rep + 1}/{args.reps}: {result['total_seconds']:.1f}s, "
              f"{result['jobs_per_second']:,.0f} jobs/s, "
              f"peak RSS {result['peak_rss_bytes'] / 1024**2:,.0f} MiB")
        worst_rss = max(worst_rss, result["peak_rss_bytes"])
        if best is None or result["total_seconds"] < best["total_seconds"]:
            best = result
    assert best is not None
    best["reps"] = args.reps
    best["peak_rss_bytes"] = worst_rss
    best["peak_rss_mib"] = round(worst_rss / 1024**2, 1)
    return best


def print_report(result: dict) -> None:
    cfg = result["config"]
    print(f"\nstream-bench: {cfg['system']} seed {cfg['seed']}, "
          f"{result['n_jobs']:,} jobs in {result['n_chunks']} chunks "
          f"of {cfg['chunk_jobs']:,}")
    for stage, secs in sorted(result["stages"].items()):
        share = secs / result["total_seconds"] if result["total_seconds"] else 0.0
        print(f"  {stage:10s} {secs:8.2f}s  {share:5.1%}")
    print(f"  {'total':10s} {result['total_seconds']:8.2f}s  "
          f"{result['jobs_per_second']:,.0f} jobs/s, "
          f"peak RSS {result['peak_rss_mib']:,.0f} MiB")


def gate_absolute(result: dict, min_jobs_s: float, max_rss_bytes: int) -> bool:
    """The bounded-memory contract: absolute floor + ceiling."""
    ok = True
    if result["jobs_per_second"] < min_jobs_s:
        print(f"stream-bench: {result['jobs_per_second']:,.0f} jobs/s below the "
              f"absolute floor of {min_jobs_s:,.0f}", file=sys.stderr)
        ok = False
    if result["peak_rss_bytes"] > max_rss_bytes:
        print(f"stream-bench: peak RSS {result['peak_rss_bytes'] / GIB:.2f} GiB "
              f"exceeds the {max_rss_bytes / GIB:.1f} GiB ceiling",
              file=sys.stderr)
        ok = False
    return ok


def check(result: dict, args: argparse.Namespace) -> int:
    baseline = load_baseline(result, args.baseline, name="stream-bench")
    if baseline is None:
        return 2
    ok = gate_throughput(
        result["jobs_per_second"], baseline["jobs_per_second"],
        args.tolerance, name="stream-bench",
    )
    ok &= gate_absolute(
        result, args.min_jobs_per_second, int(args.max_rss_gib * GIB)
    )
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--system", default="emmy", choices=("emmy", "meggie"))
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--num-nodes", type=int, default=14000)
    parser.add_argument("--num-users", type=int, default=1400)
    parser.add_argument("--horizon-s", type=int, default=26265600,
                        help="2x the emmy default: ~1.3M jobs (default)")
    parser.add_argument("--max-traces", type=int, default=2000)
    parser.add_argument("--chunk-jobs", type=int, default=100_000)
    parser.add_argument("--compact-workers", type=int, default=1)
    parser.add_argument("--reps", type=int, default=2,
                        help="best-of-N repetitions (default 2)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional throughput drop for --check")
    parser.add_argument("--min-jobs-per-second", type=float, default=15_000,
                        help="absolute throughput floor (default 15,000)")
    parser.add_argument("--max-rss-gib", type=float, default=2.0,
                        help="absolute peak-RSS ceiling in GiB (default 2)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline JSON path (default: BENCH_stream.json)")
    parser.add_argument("--check", action="store_true",
                        help="gate against the baseline and absolute limits")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline with this measurement")
    parser.add_argument("--json", type=Path, default=None,
                        help="also write the measurement JSON here")
    parser.add_argument("--worker", type=Path, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--worker-config", default=None, help=argparse.SUPPRESS)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.worker is not None:
        record = worker(json.loads(args.worker_config))
        args.worker.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        return 0
    result = measure(args)
    print_report(result)
    if args.json is not None:
        args.json.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    if args.update:
        if not gate_absolute(
            result, args.min_jobs_per_second, int(args.max_rss_gib * GIB)
        ):
            print("stream-bench: refusing to commit a baseline that fails "
                  "the absolute gates", file=sys.stderr)
            return 1
        args.baseline.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
        print(f"stream-bench: wrote {args.baseline}")
    if args.check:
        return check(result, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
