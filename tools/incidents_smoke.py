#!/usr/bin/env python
"""CI smoke for the incident benchmark: a 2-scenario graded run.

Runs the fault-free ``control`` and the single-point ``cache-corrupt``
scenarios end-to-end (live served system, armed plan, observer, bundle),
grades the rule-based baseline detector against the derived ground
truth, and asserts the benchmark's headline gates:

1. both bundles are written, well-formed, and load back from disk;
2. the baseline scores perfect recall on the single-point scenario and
   zero false positives on the control;
3. the schedule audit inside each bundle is consistent (fires match the
   plan's deterministic schedule);
4. determinism: re-running a scenario yields the **same bundle digest**
   (same scenario ⇒ same fired points at the same first call indices).

Exit 0 on success, 1 on any failed check. The bundle directory is left
on disk either way so CI can upload it as a failure artifact.

Usage::

    python tools/incidents_smoke.py [--out-dir .incidents-smoke]

``make incidents-smoke`` wraps this with the repo defaults.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SCENARIOS = ("control", "cache-corrupt")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", type=Path,
                        default=REPO_ROOT / ".incidents-smoke",
                        help="bundle output root (kept on failure so CI "
                        "can upload the bundles)")
    args = parser.parse_args()

    from repro.incidents import (
        IncidentBundle, Scorecard, get_detector, grade_answer, run_scenario,
    )

    if args.out_dir.exists():
        shutil.rmtree(args.out_dir)
    args.out_dir.mkdir(parents=True)

    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        status = "ok" if ok else "FAIL"
        print(f"[incidents-smoke] {status}: {what}")
        if not ok:
            failures.append(what)

    detector = get_detector("rules")
    card = Scorecard(detector=detector.name)
    digests: dict[str, str] = {}
    for name in SCENARIOS:
        bundle = run_scenario(name, args.out_dir, verbose=True)
        digests[name] = bundle.digest
        reloaded = IncidentBundle.load(bundle.path)
        check(
            reloaded.manifest == bundle.manifest
            and len(reloaded.events) == len(bundle.events)
            and len(reloaded.ledger) == len(bundle.ledger),
            f"{name}: bundle round-trips through disk",
        )
        check(
            reloaded.ground_truth["schedule_consistent"],
            f"{name}: fires match the plan's deterministic schedule",
        )
        card.add(grade_answer(reloaded, detector.analyze(reloaded)))

    print(card.summary())
    check(card.passed, "grader gates (single-point recall, control FPs)")

    rerun = run_scenario(SCENARIOS[-1], args.out_dir / "rerun")
    check(
        rerun.digest == digests[SCENARIOS[-1]],
        f"{SCENARIOS[-1]}: bundle digest deterministic across runs "
        f"({rerun.digest[:12]}…)",
    )

    (args.out_dir / "scorecard.json").write_text(
        json.dumps(card.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    if failures:
        print(f"[incidents-smoke] FAILED: {len(failures)} check(s); "
              f"bundles left in {args.out_dir}", file=sys.stderr)
        return 1
    print(f"[incidents-smoke] all checks passed; bundles in {args.out_dir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
