#!/usr/bin/env python
"""Open-loop load generator for the prediction serve stack.

Stands up the pre-forked :class:`repro.serve.ForkingServer` (N
``SO_REUSEPORT`` worker processes on one ephemeral port), then offers
load at a **constant scheduled rate** over persistent connections — the
wrk2 idiom. Request *i* is due at ``start + i/rate`` regardless of how
the previous request fared, and its latency is measured **from the
scheduled send time**, so a stalled server shows up as growing latency
instead of silently lowering the offered rate (the closed-loop
"coordinated omission" artifact the previous harness suffered from).

Each request is an NDJSON ``POST /predict/bulk`` carrying ``--bulk``
jobs (one JSON object per line; ``--bulk 1`` switches to single-job
``POST /predict``). Every response value is compared bit-for-bit
against a locally fitted :func:`repro.analysis.prediction` BDT oracle —
the throughput number is only reported if every prediction in the run
is exactly what ``evaluate_models`` would have produced.

Reported: sustained predictions/s over the timed window, achieved vs
offered request rate, latency p50/p90/p99/max from scheduled time, and
a fixed-bucket latency histogram (written into the result JSON so CI
can upload it as an artifact on failure).

Usage::

    python tools/serve_bench.py                 # measure, print table
    python tools/serve_bench.py --update        # rewrite BENCH_serve.json
    python tools/serve_bench.py --check         # CI gate (exit 1 on
                                                # regression or below
                                                # the absolute floor)

``make serve-bench`` wraps ``--update``; ``make serve-bench-check``
wraps ``--check``. ``--check`` gates twice: >25 % drop against the
committed ``BENCH_serve.json`` fails, and so does anything under
``--min-rate`` predictions/s (default 1,670 — 10x the pre-rework
single-process baseline of 166.74). See docs/PERFORMANCE.md for the
methodology.
"""

from __future__ import annotations

import argparse
import http.client
import json
import statistics
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tools"))

from bench_paths import bench_cache_dir  # noqa: E402
from perf_check import gate_throughput, load_baseline  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "BENCH_serve.json"
BENCH_NAME = "serve-bench"
# Pre-rework closed-loop baseline (BENCH_serve.json before the forked
# stack): 166.74 predictions/s. The acceptance floor is 10x that.
PRE_REWORK_RATE = 166.74
DEFAULT_MIN_RATE = 1670.0
HISTOGRAM_EDGES_MS = (
    0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0
)


def _percentile(sorted_values: list[float], q: float) -> float:
    idx = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[idx]


def _histogram_ms(latencies_s: list[float]) -> dict[str, int]:
    """Fixed-bucket cumulative-free latency histogram, keys in ms."""
    counts = [0] * (len(HISTOGRAM_EDGES_MS) + 1)
    for lat in latencies_s:
        ms = lat * 1e3
        for i, edge in enumerate(HISTOGRAM_EDGES_MS):
            if ms <= edge:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    labels = [f"le_{edge:g}" for edge in HISTOGRAM_EDGES_MS] + ["inf"]
    return dict(zip(labels, counts))


def _request_pool(dataset, bulk: int, limit: int = 512) -> list[dict]:
    """Pre-encoded request bodies + expected predictions from the oracle.

    Every pool entry carries the exact bytes a generator connection will
    POST and the bit-exact predictions the oracle produced for those
    jobs, so response verification is a float-equality comparison on the
    hot path's output.
    """
    from repro.analysis.prediction import default_models
    from repro.ml.pipeline import fit_predictor

    jobs = dataset.jobs
    n = min(limit, len(jobs))
    records = [
        {
            "user": str(jobs["user"][i]),
            "nodes": int(jobs["nodes"][i]),
            "req_walltime_s": int(jobs["req_walltime_s"][i]),
        }
        for i in range(n)
    ]
    # The oracle: the same fit the registry performs for this scenario.
    # evaluate_models uses fit_predictor with default_models() too, so
    # matching this fit bit-for-bit is matching the paper pipeline.
    oracle = fit_predictor(jobs, default_models()["BDT"], model_name="BDT")
    expected = oracle.predict_records(records)

    pool = []
    for start in range(0, n, bulk):
        chunk = records[start:start + bulk]
        if bulk == 1:
            body = json.dumps({"model": "BDT", "job": chunk[0]}).encode()
        else:
            body = b"\n".join(json.dumps(r).encode() for r in chunk)
        pool.append({
            "body": body,
            "expected": [float(v) for v in expected[start:start + bulk]],
        })
    return pool


class _OpenLoopConnection(threading.Thread):
    """One persistent connection replaying its slice of the schedule.

    ``sends`` is a list of ``(due_time_offset_s, pool_index)`` pairs;
    the thread sleeps until each due time, fires the request, and logs
    latency from the *due* time — if the previous response was late,
    the backlog shows up as latency, never as a lower offered rate.
    """

    def __init__(self, host, port, path, pool, sends, start_at, bulk):
        super().__init__(daemon=True)
        self.host, self.port, self.path = host, port, path
        self.pool, self.sends, self.start_at = pool, sends, start_at
        self.bulk = bulk
        self.latencies: list[float] = []
        self.predictions = 0
        self.failures: list[str] = []
        self.mismatches = 0

    def run(self) -> None:
        headers = {"Content-Type": (
            "application/x-ndjson" if self.bulk > 1 else "application/json"
        )}
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30)
        for offset, pool_idx in self.sends:
            due = self.start_at + offset
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            entry = self.pool[pool_idx]
            try:
                conn.request("POST", self.path, body=entry["body"],
                             headers=headers)
                response = conn.getresponse()
                data = response.read()
                if response.status != 200:
                    self.failures.append(f"HTTP {response.status}: "
                                         f"{data[:120]!r}")
                    continue
            except OSError as exc:
                self.failures.append(str(exc))
                conn.close()
                conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=30
                )
                continue
            # Latency from the scheduled time: includes any backlog this
            # connection accumulated (coordinated-omission correction).
            self.latencies.append(time.perf_counter() - due)
            if self.bulk > 1:
                values = [float(line) for line in data.split()]
            else:
                values = [float(p) for p in json.loads(data)["predictions"]]
            self.predictions += len(values)
            if values != entry["expected"]:
                self.mismatches += 1
        conn.close()


def _run_open_loop(host, port, pool, *, rate, duration, connections, bulk):
    """Offer ``rate`` requests/s for ``duration`` s across connections."""
    path = "/predict/bulk?model=BDT" if bulk > 1 else "/predict"
    n_requests = max(1, int(rate * duration))
    per_conn: list[list[tuple[float, int]]] = [[] for _ in range(connections)]
    for i in range(n_requests):
        per_conn[i % connections].append((i / rate, i % len(pool)))

    start_at = time.perf_counter() + 0.25  # let every thread reach the loop
    threads = [
        _OpenLoopConnection(host, port, path, pool, sends, start_at, bulk)
        for sends in per_conn if sends
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start_at
    latencies = sorted(lat for t in threads for lat in t.latencies)
    return {
        "latencies": latencies,
        "predictions": sum(t.predictions for t in threads),
        "requests_done": sum(len(t.latencies) for t in threads),
        "requests_offered": n_requests,
        "elapsed": elapsed,
        "failures": [f for t in threads for f in t.failures],
        "mismatches": sum(t.mismatches for t in threads),
    }


def measure(args: argparse.Namespace) -> dict:
    """Warm-up + one timed open-loop window against a fresh worker pool."""
    from repro.pipeline import build_dataset
    from repro.serve import ForkingServer
    from repro.spec import ScenarioSpec

    spec = ScenarioSpec(
        system=args.system, seed=args.seed, num_nodes=args.num_nodes,
        num_users=args.num_users, horizon_days=args.horizon_days,
        max_traces=args.max_traces,
    )
    dataset = build_dataset(**spec.dataset_kwargs(), cache_dir=args.cache_dir)
    pool = _request_pool(dataset, bulk=args.bulk)

    t0 = time.perf_counter()
    server = ForkingServer(
        spec, workers=args.workers, cache_dir=args.cache_dir,
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        warm=("BDT",),
    ).start()
    warm_seconds = time.perf_counter() - t0
    host, port = server.host, server.port

    if not args.quiet:
        print(f"{BENCH_NAME}: {spec.label} pool of {args.workers} workers "
              f"up in {warm_seconds:.2f}s on {server.address}, "
              f"{len(pool)} request bodies x {args.bulk} jobs")

    try:
        # Warm-up at 1/4 rate: connections, per-worker model caches, and
        # first-batch effects stay out of the timed window.
        _run_open_loop(
            host, port, pool, rate=max(args.rate / 4, 1.0),
            duration=min(2.0, args.duration), connections=args.connections,
            bulk=args.bulk,
        )
        run = _run_open_loop(
            host, port, pool, rate=args.rate, duration=args.duration,
            connections=args.connections, bulk=args.bulk,
        )
    finally:
        server.close()

    if run["failures"]:
        raise SystemExit(f"{BENCH_NAME}: {len(run['failures'])} failed "
                         f"requests; first: {run['failures'][0]}")
    if run["mismatches"]:
        raise SystemExit(
            f"{BENCH_NAME}: {run['mismatches']} responses were NOT "
            "bit-identical to the evaluate_models oracle — serving stack "
            "broke the identity contract"
        )
    latencies = run["latencies"]
    return {
        "config": {
            "system": args.system, "seed": args.seed,
            "num_nodes": args.num_nodes, "num_users": args.num_users,
            "horizon_days": args.horizon_days, "max_traces": args.max_traces,
            "workers": args.workers, "connections": args.connections,
            "rate_rps": args.rate, "duration_s": args.duration,
            "bulk": args.bulk, "max_batch": args.max_batch,
            "max_wait_ms": args.max_wait_ms, "model": "BDT",
        },
        "methodology": "open-loop constant-rate (latency from scheduled send)",
        "n_requests": run["requests_done"],
        "requests_offered": run["requests_offered"],
        "n_predictions": run["predictions"],
        "wall_seconds": round(run["elapsed"], 4),
        "predictions_per_second": round(
            run["predictions"] / run["elapsed"], 2
        ),
        "achieved_request_rate": round(
            run["requests_done"] / run["elapsed"], 2
        ),
        "offered_request_rate": round(args.rate, 2),
        "latency_ms": {
            "mean": round(statistics.fmean(latencies) * 1e3, 3),
            "p50": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p90": round(_percentile(latencies, 0.90) * 1e3, 3),
            "p99": round(_percentile(latencies, 0.99) * 1e3, 3),
            "max": round(latencies[-1] * 1e3, 3),
        },
        "latency_histogram_ms": _histogram_ms(latencies),
        "bit_identity": {
            "checked_responses": run["requests_done"],
            "mismatches": 0,
        },
        "pre_rework_baseline": {
            "predictions_per_second": PRE_REWORK_RATE,
            "speedup": round(
                run["predictions"] / run["elapsed"] / PRE_REWORK_RATE, 1
            ),
        },
        "warm_seconds": round(warm_seconds, 4),
    }


def print_report(result: dict) -> None:
    cfg = result["config"]
    lat = result["latency_ms"]
    print(f"\n{cfg['system']} seed {cfg['seed']}: {cfg['workers']} workers, "
          f"{cfg['connections']} connections, offered "
          f"{result['offered_request_rate']:,.0f} req/s x {cfg['bulk']} jobs "
          f"for {cfg['duration_s']:.0f}s")
    print(f"  throughput {result['predictions_per_second']:,.0f} "
          f"predictions/s over {result['wall_seconds']:.2f}s "
          f"({result['pre_rework_baseline']['speedup']:.1f}x pre-rework)")
    print(f"  requests   {result['achieved_request_rate']:,.0f} req/s "
          f"achieved vs {result['offered_request_rate']:,.0f} offered")
    print(f"  latency    p50 {lat['p50']:.2f}  p90 {lat['p90']:.2f}  "
          f"p99 {lat['p99']:.2f}  max {lat['max']:.2f} ms "
          f"(from scheduled send)")
    print(f"  identity   {result['bit_identity']['checked_responses']} "
          f"responses bit-identical to the evaluate_models oracle")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--system", default="emmy", choices=("emmy", "meggie"))
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--num-nodes", type=int, default=60)
    parser.add_argument("--num-users", type=int, default=30)
    parser.add_argument("--horizon-days", type=float, default=10.0)
    parser.add_argument("--max-traces", type=int, default=50)
    parser.add_argument("--workers", type=int, default=2,
                        help="serve worker processes (SO_REUSEPORT pool)")
    parser.add_argument("--connections", type=int, default=8,
                        help="persistent load-generator connections")
    parser.add_argument("--rate", type=float, default=165.0,
                        help="offered request rate (req/s), open-loop")
    parser.add_argument("--duration", type=float, default=8.0,
                        help="timed window length in seconds")
    parser.add_argument("--bulk", type=int, default=64,
                        help="jobs per request; >1 uses NDJSON "
                        "/predict/bulk, 1 uses /predict")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="artifact cache for the dataset + trained model "
                        "(default: the bench scratch cache, see "
                        "tools/bench_paths.py — never the repo tree)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional throughput drop for --check")
    parser.add_argument("--min-rate", type=float, default=DEFAULT_MIN_RATE,
                        help="absolute predictions/s floor for --check "
                        "(default: 10x the pre-rework 166.74/s)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline JSON path (default: BENCH_serve.json)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the baseline; exit 1 on "
                        "regression or below --min-rate")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline with this measurement")
    parser.add_argument("--json", type=Path, default=None,
                        help="also write the measurement JSON here")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.cache_dir is None:
        args.cache_dir = bench_cache_dir()
    result = measure(args)
    if not args.quiet:
        print_report(result)
    if args.json is not None:
        args.json.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    if args.update:
        args.baseline.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
        print(f"{BENCH_NAME}: wrote {args.baseline}")
    if args.check:
        rate = result["predictions_per_second"]
        if rate < args.min_rate:
            print(f"{BENCH_NAME}: {rate:,.0f} predictions/s is below the "
                  f"absolute floor of {args.min_rate:,.0f}", file=sys.stderr)
            return 1
        baseline = load_baseline(result, args.baseline, name=BENCH_NAME)
        if baseline is None:
            return 2
        ok = gate_throughput(
            rate,
            baseline["predictions_per_second"],
            args.tolerance,
            unit="predictions/s",
            name=BENCH_NAME,
        )
        if not ok:
            base_p99 = baseline["latency_ms"]["p99"]
            print(f"{BENCH_NAME}: p99 {result['latency_ms']['p99']:.2f} ms "
                  f"vs baseline {base_p99:.2f} ms", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
