#!/usr/bin/env python
"""Load-generator harness for the online prediction service.

Stands up an in-process :class:`repro.serve.PredictionServer` (ephemeral
port), then hammers ``POST /predict`` from ``--clients`` concurrent
threads, each sending ``--requests`` single-job requests drawn from the
scenario's own job table. Records

* sustained throughput (predictions/s over the loaded window),
* per-request latency p50 / p99 / mean (ms), and
* micro-batching effectiveness (mean/max batch size actually formed),

and writes/gates them against ``BENCH_serve.json`` through the same
machinery as the dataset bench (:mod:`tools.perf_check`:
``load_baseline`` / ``gate_throughput``, >25 % regression fails).

Usage::

    python tools/serve_bench.py                 # measure, print table
    python tools/serve_bench.py --update        # rewrite BENCH_serve.json
    python tools/serve_bench.py --check         # CI gate (exit 1 on
                                                # throughput regression)

``make serve-bench`` wraps ``--update``; ``make serve-bench-check``
wraps ``--check``. See docs/SERVICE.md for methodology.
"""

from __future__ import annotations

import argparse
import http.client
import json
import statistics
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tools"))

from bench_paths import bench_cache_dir  # noqa: E402
from perf_check import gate_throughput, load_baseline  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "BENCH_serve.json"
BENCH_NAME = "serve-bench"


def _percentile(sorted_values: list[float], q: float) -> float:
    idx = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[idx]


def _request_pool(dataset, limit: int = 512) -> list[bytes]:
    """Pre-encoded single-job /predict bodies drawn from real jobs."""
    jobs = dataset.jobs
    n = min(limit, len(jobs))
    bodies = []
    for i in range(n):
        payload = {
            "model": "BDT",
            "job": {
                "user": str(jobs["user"][i]),
                "nodes": int(jobs["nodes"][i]),
                "req_walltime_s": int(jobs["req_walltime_s"][i]),
            },
        }
        bodies.append(json.dumps(payload).encode("utf-8"))
    return bodies


def _client(
    host: str,
    port: int,
    bodies: list[bytes],
    n_requests: int,
    offset: int,
    barrier: threading.Barrier,
    latencies: list[float],
    failures: list[str],
) -> None:
    """One load-generator thread: keep-alive connection, sequential POSTs."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    headers = {"Content-Type": "application/json"}
    barrier.wait()
    for i in range(n_requests):
        body = bodies[(offset + i) % len(bodies)]
        t0 = time.perf_counter()
        try:
            conn.request("POST", "/predict", body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            if response.status != 200:
                failures.append(f"HTTP {response.status}: {data[:120]!r}")
                continue
        except OSError as exc:
            failures.append(str(exc))
            conn.close()
            conn = http.client.HTTPConnection(host, port, timeout=30)
            continue
        latencies.append(time.perf_counter() - t0)
    conn.close()


def measure(args: argparse.Namespace) -> dict:
    """One warm-up + one timed load run against a fresh in-process server."""
    from repro.pipeline import build_dataset
    from repro.serve import create_server
    from repro.spec import ScenarioSpec

    spec = ScenarioSpec(
        system=args.system, seed=args.seed, num_nodes=args.num_nodes,
        num_users=args.num_users, horizon_days=args.horizon_days,
        max_traces=args.max_traces,
    )

    t0 = time.perf_counter()
    server = create_server(
        spec, cache_dir=args.cache_dir, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, warm=("BDT",),
    )
    warm_seconds = time.perf_counter() - t0
    server.serve_in_background()
    dataset = build_dataset(**spec.dataset_kwargs(), cache_dir=args.cache_dir)
    bodies = _request_pool(dataset)
    host, port = server.server_address[0], server.port

    if not args.quiet:
        print(f"{BENCH_NAME}: {spec.label} warm in {warm_seconds:.2f}s, "
              f"{len(bodies)} distinct jobs, serving on {server.address}")

    try:
        # Short warm-up so connection setup and first-batch effects stay
        # out of the timed window.
        _run_clients(host, port, bodies, clients=args.clients, requests=20)
        latencies, wall_seconds, failures = _run_clients(
            host, port, bodies, clients=args.clients, requests=args.requests
        )
        batch_stats = _batcher_snapshot(host, port)
    finally:
        server.close()

    if failures:
        raise SystemExit(f"{BENCH_NAME}: {len(failures)} failed requests; "
                         f"first: {failures[0]}")
    n = len(latencies)
    latencies.sort()
    return {
        "config": {
            "system": args.system, "seed": args.seed,
            "num_nodes": args.num_nodes, "num_users": args.num_users,
            "horizon_days": args.horizon_days, "max_traces": args.max_traces,
            "clients": args.clients, "requests_per_client": args.requests,
            "max_batch": args.max_batch, "max_wait_ms": args.max_wait_ms,
            "model": "BDT",
        },
        "n_requests": n,
        "wall_seconds": round(wall_seconds, 4),
        "predictions_per_second": round(n / wall_seconds, 2),
        "latency_ms": {
            "mean": round(statistics.fmean(latencies) * 1e3, 3),
            "p50": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p99": round(_percentile(latencies, 0.99) * 1e3, 3),
        },
        "batching": batch_stats,
        "warm_seconds": round(warm_seconds, 4),
    }


def _run_clients(
    host: str, port: int, bodies: list[bytes], clients: int, requests: int
) -> tuple[list[float], float, list[str]]:
    latencies_per_client: list[list[float]] = [[] for _ in range(clients)]
    failures: list[str] = []
    barrier = threading.Barrier(clients + 1)
    threads = [
        threading.Thread(
            target=_client,
            args=(host, port, bodies, requests, i * 37, barrier,
                  latencies_per_client[i], failures),
            daemon=True,
        )
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    merged = [lat for per_client in latencies_per_client for lat in per_client]
    return merged, wall, failures


def _batcher_snapshot(host: str, port: int) -> dict:
    conn = http.client.HTTPConnection(host, port, timeout=10)
    conn.request("GET", "/models")
    stats = json.loads(conn.getresponse().read())
    conn.close()
    batchers = stats.get("batchers", {})
    merged = {"mean_batch": 0.0, "max_batch": 0, "n_batches": 0}
    for snap in batchers.values():
        merged["n_batches"] += snap["n_batches"]
        merged["max_batch"] = max(merged["max_batch"], snap["max_batch"])
        merged["mean_batch"] = max(merged["mean_batch"], snap["mean_batch"])
    return merged


def print_report(result: dict) -> None:
    cfg = result["config"]
    lat = result["latency_ms"]
    print(f"\n{cfg['system']} seed {cfg['seed']}: {cfg['clients']} clients x "
          f"{cfg['requests_per_client']} requests ({result['n_requests']} total)")
    print(f"  throughput {result['predictions_per_second']:,.0f} predictions/s "
          f"over {result['wall_seconds']:.2f}s")
    print(f"  latency    p50 {lat['p50']:.2f} ms  p99 {lat['p99']:.2f} ms  "
          f"mean {lat['mean']:.2f} ms")
    print(f"  batching   mean {result['batching']['mean_batch']:.1f} "
          f"max {result['batching']['max_batch']} "
          f"({result['batching']['n_batches']} batches)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--system", default="emmy", choices=("emmy", "meggie"))
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--num-nodes", type=int, default=60)
    parser.add_argument("--num-users", type=int, default=30)
    parser.add_argument("--horizon-days", type=float, default=10.0)
    parser.add_argument("--max-traces", type=int, default=50)
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent load-generator threads")
    parser.add_argument("--requests", type=int, default=250,
                        help="requests per client in the timed window")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="artifact cache for the dataset + trained model "
                        "(default: the bench scratch cache, see "
                        "tools/bench_paths.py — never the repo tree)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional throughput drop for --check")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline JSON path (default: BENCH_serve.json)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the baseline; exit 1 on regression")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline with this measurement")
    parser.add_argument("--json", type=Path, default=None,
                        help="also write the measurement JSON here")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.cache_dir is None:
        args.cache_dir = bench_cache_dir()
    result = measure(args)
    if not args.quiet:
        print_report(result)
    if args.json is not None:
        args.json.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    if args.update:
        args.baseline.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
        print(f"{BENCH_NAME}: wrote {args.baseline}")
    if args.check:
        baseline = load_baseline(result, args.baseline, name=BENCH_NAME)
        if baseline is None:
            return 2
        ok = gate_throughput(
            result["predictions_per_second"],
            baseline["predictions_per_second"],
            args.tolerance,
            unit="predictions/s",
            name=BENCH_NAME,
        )
        if not ok:
            base_p99 = baseline["latency_ms"]["p99"]
            print(f"{BENCH_NAME}: p99 {result['latency_ms']['p99']:.2f} ms "
                  f"vs baseline {base_p99:.2f} ms", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
