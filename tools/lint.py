#!/usr/bin/env python
"""Lint gate: ruff when installed, a stdlib fallback linter otherwise.

``make lint`` runs this. On CI (and any dev box with ruff installed)
it delegates to the pinned ruff configured in ``pyproject.toml``
(``[tool.ruff]``), so the authoritative rule set lives in one place.
On boxes without ruff — the reproduction deliberately keeps its
runtime dependency-free — it degrades to a conservative subset of the
same rules implemented on ``ast`` + ``tokenize``:

* **E9xx** — files must parse (SyntaxError / IndentationError);
* **F401** (approximate) — a top-level import whose name never appears
  again in the file;
* **E501** — lines over the configured limit (100, matching ruff);
* **W291/W293** — trailing whitespace;
* **W292** — missing newline at end of file.

The fallback is intentionally strict-on-certain / silent-on-uncertain:
anything it flags would also fail ruff, so a clean fallback run never
turns into a red CI lint job for a new reason.

Usage::

    python tools/lint.py            # lint the default paths
    python tools/lint.py src tests  # lint specific trees
"""

from __future__ import annotations

import ast
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ("src", "tools", "benchmarks", "tests")
MAX_LINE = 100

#: Modules whose imports exist for re-export or registration side
#: effects; the F401 approximation skips them (ruff handles these via
#: __all__ and redundant-alias detection).
_REEXPORT_FILES = frozenset({"__init__.py", "conftest.py"})


def _run_ruff(paths: list[str]) -> int:
    print("lint: using ruff (pyproject.toml [tool.ruff])")
    return subprocess.run(["ruff", "check", *paths], cwd=REPO_ROOT).returncode


def _python_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        root = REPO_ROOT / path
        if root.is_file() and root.suffix == ".py":
            files.append(root)
        elif root.is_dir():
            files.extend(
                p for p in sorted(root.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
    return files


def _import_bindings(tree: ast.Module) -> list[tuple[int, str]]:
    """Top-level (lineno, bound-name) pairs from import statements."""
    out: list[tuple[int, str]] = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                out.append((node.lineno, name))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue  # compiler directives, never "unused"
            for alias in node.names:
                if alias.name == "*":
                    continue
                out.append((node.lineno, alias.asname or alias.name))
    return out


def _check_file(path: Path) -> list[str]:
    rel = path.relative_to(REPO_ROOT)
    problems: list[str] = []
    source = path.read_text(encoding="utf-8")

    try:
        tree = ast.parse(source, filename=str(rel))
    except SyntaxError as exc:
        return [f"{rel}:{exc.lineno}: E999 {exc.msg}"]

    lines = source.splitlines()
    for i, line in enumerate(lines, start=1):
        if len(line) > MAX_LINE:
            problems.append(f"{rel}:{i}: E501 line too long ({len(line)} > {MAX_LINE})")
        if line != line.rstrip():
            code = "W293" if not line.strip() else "W291"
            problems.append(f"{rel}:{i}: {code} trailing whitespace")
    if source and not source.endswith("\n"):
        problems.append(f"{rel}:{len(lines)}: W292 no newline at end of file")

    if path.name not in _REEXPORT_FILES:
        # Approximate F401: a top-level import whose bound name is never
        # loaded anywhere in the AST. ``ast.Name`` is the right net —
        # unlike tokenize it sees inside f-strings (a single STRING
        # token on 3.11) and skips the import statements themselves.
        # Not scope-aware, so shadowing can hide a true positive — but
        # a reported name is genuinely unused.
        used = {node.id for node in ast.walk(tree) if isinstance(node, ast.Name)}
        for lineno, name in _import_bindings(tree):
            if name not in used and f"\"{name}\"" not in source and f"'{name}'" not in source:
                problems.append(f"{rel}:{lineno}: F401 {name!r} imported but unused")

    return problems


def _run_fallback(paths: list[str]) -> int:
    print("lint: ruff not installed; running the stdlib fallback linter")
    files = _python_files(paths)
    problems: list[str] = []
    for path in files:
        problems.extend(_check_file(path))
    for problem in problems:
        print(problem)
    print(f"lint: {len(files)} file(s), {len(problems)} problem(s)")
    return 1 if problems else 0


def main(argv: list[str] | None = None) -> int:
    paths = list(argv) if argv else list(DEFAULT_PATHS)
    if shutil.which("ruff"):
        return _run_ruff(paths)
    return _run_fallback(paths)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
