#!/usr/bin/env python
"""End-to-end smoke test for the drift-aware model lifecycle.

Drives the whole loop from docs/LIFECYCLE.md over real HTTP against a
tiny scenario, asserting at each step:

1. the pre-/v1 deprecation shims answer with ``Deprecation: true``;
2. ``POST /v1/feedback`` ingests observed outcomes and advances the
   prequential learner deterministically;
3. a shifted feedback window (inflated power, 20x node counts) forces
   the drift detector to latch and journal a ``drift`` event;
4. a candidate version registered from the drifted learner state is
   shadow-evaluated on live ``/v1/predict`` traffic without ever
   touching the live responses;
5. ``POST /v1/admin/promote`` flips the active version, records
   who/why plus the shadow evidence in the journal, and
   ``GET /v1/models`` agrees with ``GET /v1/admin/history`` about the
   lineage;
6. ``POST /v1/admin/rollback`` restores the previous version and the
   served predictions are **bit-identical** to the pre-promote ones.

Exit 0 on success, 1 on any failed assertion (the journal contents are
dumped to stderr and left on disk for CI to upload as an artifact).

Usage::

    python tools/lifecycle_smoke.py [--cache-dir .lifecycle-smoke]

``make lifecycle-smoke`` wraps this with the repo defaults.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SPEC_KWARGS = dict(
    system="emmy", seed=3, num_nodes=24, num_users=10, horizon_days=2,
    max_traces=10,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", type=Path,
                        default=REPO_ROOT / ".lifecycle-smoke",
                        help="artifact cache + journal root (kept on "
                        "failure so CI can upload the journal)")
    args = parser.parse_args()

    from repro.incidents import ServedSystem
    from repro.pipeline import build_dataset
    from repro.spec import ScenarioSpec

    if args.cache_dir.exists():
        shutil.rmtree(args.cache_dir)

    spec = ScenarioSpec(**SPEC_KWARGS)
    ds = build_dataset(**spec.dataset_kwargs(), cache_dir=args.cache_dir)
    jobs = ds.jobs.sort_by("submit_s")
    records = [
        {
            "user": str(jobs["user"][i]),
            "nodes": int(jobs["nodes"][i]),
            "req_walltime_s": int(jobs["req_walltime_s"][i]),
            "power_w": float(jobs["pernode_power_w"][i]),
        }
        for i in range(min(len(jobs), 40))
    ]

    server = ServedSystem(
        spec, cache_dir=args.cache_dir, warm=("online",), lifecycle=True
    ).start()
    manager = server.service.lifecycle
    journal_path = manager.journal.path
    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        mark = "ok  " if ok else "FAIL"
        print(f"  {mark} {what}")
        if not ok:
            failures.append(what)

    def http(method: str, path: str, body: dict | None = None):
        return server.request(method, path, payload=body)

    try:
        print(f"serving {spec.label} on {server.base_url}  "
              f"(journal: {journal_path})")

        print("step 1: deprecation shims")
        status, headers, _ = http("GET", "/models")
        check(status == 200, "legacy /models still answers")
        check(headers.get("Deprecation") == "true",
              "legacy /models carries Deprecation: true")
        check("successor-version" in headers.get("Link", ""),
              "legacy /models links its /v1 successor")
        status, headers, _ = http("GET", "/v1/models")
        check(status == 200 and "Deprecation" not in headers,
              "/v1/models answers without deprecation headers")

        print("step 2: feedback ingest")
        status, _, out = http("POST", "/v1/feedback",
                              {"jobs": records})
        check(status == 200 and out.get("accepted") == len(records),
              f"/v1/feedback accepted {len(records)} records")
        jobs_seen_once = out.get("learner_jobs")
        check(isinstance(jobs_seen_once, int) and jobs_seen_once > 0,
              "prequential learner advanced")

        print("step 3: forced drift")
        shifted = [
            {**r, "power_w": r["power_w"] * 10.0, "nodes": r["nodes"] * 20}
            for r in records
        ]
        status, _, out = http("POST", "/v1/feedback",
                              {"jobs": shifted})
        check(status == 200, "/v1/feedback took the shifted window")
        check(bool(out.get("drift")), "drift rules fired on the response")
        check(manager.drift_active("online"), "drift gauge latched")
        drift_events = [e for e in manager.history("online")
                        if e["event"] == "drift"]
        check(bool(drift_events), "journal recorded the drift event")

        print("step 4: candidate + shadow evaluation")
        candidate = manager.create_candidate(
            "online", who="smoke", why="post-drift learner state"
        )
        check(candidate >= 2, f"candidate registered as v{candidate}")
        live_jobs = [{k: r[k] for k in ("user", "nodes", "req_walltime_s")}
                     for r in records[:8]]
        predict_body = {"model": "online", "jobs": live_jobs}
        deadline = time.monotonic() + 30
        before = None
        while time.monotonic() < deadline:
            status, _, out = http("POST", "/v1/predict", predict_body)
            if status != 200:
                break
            before = out
            if (manager.shadow_report("online") or {}).get("n", 0) > 0:
                break
            time.sleep(0.2)
        check(before is not None and status == 200, "live /v1/predict answers")
        check(before is not None and before.get("version") == 1,
              "live responses served by v1 while candidate shadows")
        report = manager.shadow_report("online")
        check(bool(report and report["n"] > 0),
              f"shadow evaluated mirrored traffic ({report})")

        print("step 5: promote")
        status, _, out = http("POST", "/v1/admin/promote",
                              {"model": "online", "version": candidate,
                               "who": "smoke", "why": "drift + shadow"})
        check(status == 200 and out.get("active") == candidate,
              f"promote flipped active to v{candidate}")
        status, _, models = http("GET", "/v1/models")
        row = next(r for r in models["models"] if r["model"] == "online")
        status, _, hist = http("GET", "/v1/admin/history?model=online")
        promotes = [e for e in hist["events"] if e["event"] == "promote"]
        check(bool(promotes) and promotes[-1]["version"] == row["active"],
              "/v1/models and the audit trail agree on the active version")
        check(promotes[-1].get("who") == "smoke"
              and promotes[-1].get("why") == "drift + shadow",
              "journal records who/why")
        check((promotes[-1].get("evidence") or {}).get("n", 0) > 0,
              "journal carries the shadow evidence")
        status, _, after = http("POST", "/v1/predict", predict_body)
        check(status == 200 and after["version"] == candidate,
              f"post-promote responses served by v{candidate}")

        print("step 6: rollback bit-identity")
        status, _, out = http("POST", "/v1/admin/rollback",
                              {"model": "online", "who": "smoke",
                               "why": "smoke rollback"})
        check(status == 200 and out.get("active") == 1,
              "rollback restored v1")
        status, _, restored = http("POST", "/v1/predict", predict_body)
        check(status == 200
              and restored["predictions"] == before["predictions"],
              "rolled-back predictions are bit-identical to pre-promote")
        status, _, models = http("GET", "/v1/models")
        row = next(r for r in models["models"] if r["model"] == "online")
        check(row["active"] == 1 and row["candidate"] is None,
              "lineage shows v1 active and the candidate retired")
    finally:
        server.close()

    if failures:
        print(f"\nlifecycle-smoke: {len(failures)} failure(s)",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print(f"\njournal ({journal_path}):", file=sys.stderr)
        if journal_path.is_file():
            sys.stderr.write(journal_path.read_text())
        return 1
    shutil.rmtree(args.cache_dir, ignore_errors=True)
    print("\nlifecycle-smoke: OK (feedback -> drift -> shadow -> "
          "promote -> rollback, audit trail consistent)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
