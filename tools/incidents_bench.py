#!/usr/bin/env python
"""Run the full incident benchmark and commit the baseline scorecard.

Executes every registered scenario (``repro.incidents.SCENARIOS``)
against a live served system, grades the shipped rule-based baseline
detector, and writes ``SCORECARD_incidents.json`` — the committed
record of how the baseline fares on the catalog (per-scenario
precision / recall / F1 / time-to-detect plus the deterministic bundle
digests).

``--check`` re-runs the benchmark and compares against the committed
scorecard instead of rewriting it: the gates must still pass and every
bundle digest must match (digests are pure functions of the frozen
scenarios, so any drift means a scenario, the spec, or the injection
behavior changed — re-run without ``--check`` deliberately after such a
change).

Exit 0 when the gates pass (and, with ``--check``, digests match);
1 otherwise.

Usage::

    python tools/incidents_bench.py [--check] [--out SCORECARD_incidents.json]

``make incidents-bench`` / ``make incidents-bench-check`` wrap this.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "SCORECARD_incidents.json",
                        help="committed scorecard path")
    parser.add_argument("--detector", default="rules",
                        help="baseline detector to grade")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed scorecard "
                        "instead of rewriting it")
    args = parser.parse_args()

    from repro.incidents import (
        Scorecard, get_detector, grade_answer, run_scenario, scenario_names,
    )

    detector = get_detector(args.detector)
    card = Scorecard(detector=detector.name)
    digests: dict[str, str] = {}
    with tempfile.TemporaryDirectory(prefix="repro-incidents-bench-") as tmp:
        out_dir = Path(tmp) / "bundles"
        cache_dir = Path(tmp) / "cache"
        for name in scenario_names():
            bundle = run_scenario(
                name, out_dir, cache_dir=cache_dir, verbose=True
            )
            digests[name] = bundle.digest
            card.add(grade_answer(bundle, detector.analyze(bundle)))

    print(card.summary())
    record = {"digests": digests, **card.to_dict()}

    if args.check:
        try:
            committed = json.loads(args.out.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"[incidents-bench] cannot read {args.out}: {exc}",
                  file=sys.stderr)
            return 1
        drifted = {
            name: (committed.get("digests", {}).get(name), digest)
            for name, digest in digests.items()
            if committed.get("digests", {}).get(name) != digest
        }
        if drifted:
            for name, (old, new) in sorted(drifted.items()):
                print(f"[incidents-bench] digest drift on {name}: "
                      f"committed {old} != current {new}", file=sys.stderr)
            return 1
        print(f"[incidents-bench] {len(digests)} bundle digest(s) match "
              f"{args.out.name}")
    else:
        args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"[incidents-bench] scorecard written to {args.out}")

    return 0 if card.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
